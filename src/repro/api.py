"""repro.api — the stable public facade.

Everything a paper-reproduction script, notebook or CI job should need
lives here under names that will not churn:

* :class:`Scenario` — keyword-only experiment description shared by the
  entry points, replacing the loose ``f/seed/batch/**cluster_kwargs``
  threading of the old harness functions.
* :func:`load_point` / :func:`throughput_curve` / :func:`peak_throughput`
  — the Fig. 10 throughput/latency methodology.
* :func:`traced_run` — a short, fully observed run for trace export.
* Re-exports of the configuration, runtime, and observability types the
  above produce and consume.

The old ``repro.harness.scenarios`` entry points still work but emit
:class:`DeprecationWarning`; new code should import from here::

    from repro.api import Scenario, load_point

    result = load_point(Scenario(protocol="marlin", f=1, clients=4096))
    print(result.as_row())
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace

from repro.adversary import (
    ADVERSARY_SCENARIOS,
    get_scenario as _get_adversary_scenario,
)
from repro.adversary import (
    AdversaryConfig,
    AdversaryScenario,
    BehaviorSpec,
    CampaignResult,
    CellResult,
    SafetyChecker,
    SafetyReport,
    apply_adversary,
    behavior_kinds,
    run_campaign,
)
from repro.client import ClientConfig, ClientSession, ReplyCertificate
from repro.client.router import ShardRouter
from repro.common.config import (
    ClusterConfig,
    ExperimentConfig,
    MachineProfile,
    NetworkProfile,
)
from repro.common.errors import ConfigError
from repro.consensus.pipeline import PipelineConfig
from repro.harness.audit import (
    AuditReport,
    ComplexitySweep,
    audited_run,
    complexity_sweep,
)
from repro.harness.des_runtime import DESCluster, PROTOCOLS
from repro.harness.metrics import RunResult
from repro.harness.scenarios import (
    DEFAULT_MAX_BATCH,
    LATENCY_CAP,
    NormalCaseCost,
    ViewChangeCost,
    ViewChangeResult,
    _latency_breakdown,
    _load_point,
    _peak_throughput,
    _throughput_latency_curve,
    _traced_scenario,
    default_client_sweep,
    measure_normal_case_cost,
    measure_view_change_cost,
    peak_at_latency_cap,
    rotating_leader_throughput,
    view_change_latency,
)
from repro.harness.parallel import ResultCache, SweepExecutor, code_fingerprint
from repro.harness.workload import ClosedLoopClients, ShardedClosedLoopClients
from repro.obs.complexity import ComplexityObservatory, SlopeFit
from repro.obs.flight import FlightRecorder, read_blackbox
from repro.obs.journey import JourneyRecorder
from repro.obs.observer import RunObservability
from repro.runtime.cluster import LocalClient, LocalCluster
from repro.runtime.node import Node
from repro.shard import ShardConfig, ShardedCluster, ShardedLocalCluster

__all__ = [
    "ADVERSARY_SCENARIOS",
    "AdversaryConfig",
    "AdversaryScenario",
    "AuditReport",
    "BehaviorSpec",
    "CampaignResult",
    "CellResult",
    "ClientConfig",
    "ClientSession",
    "ClosedLoopClients",
    "ClusterConfig",
    "ComplexityObservatory",
    "ComplexitySweep",
    "DEFAULT_MAX_BATCH",
    "DESCluster",
    "ExperimentConfig",
    "FlightRecorder",
    "JourneyRecorder",
    "LATENCY_CAP",
    "LocalClient",
    "LocalCluster",
    "MachineProfile",
    "NetworkProfile",
    "Node",
    "NormalCaseCost",
    "PipelineConfig",
    "ReplyCertificate",
    "ResultCache",
    "RunObservability",
    "RunResult",
    "SafetyChecker",
    "SafetyReport",
    "Scenario",
    "ShardConfig",
    "ShardRouter",
    "ShardedClosedLoopClients",
    "ShardedCluster",
    "ShardedLocalCluster",
    "SlopeFit",
    "SweepExecutor",
    "ViewChangeCost",
    "ViewChangeResult",
    "apply_adversary",
    "audited_run",
    "behavior_kinds",
    "code_fingerprint",
    "complexity_sweep",
    "default_client_sweep",
    "latency_breakdown",
    "load_point",
    "measure_normal_case_cost",
    "measure_view_change_cost",
    "peak_at_latency_cap",
    "peak_throughput",
    "read_blackbox",
    "restart_replica",
    "rotating_leader_throughput",
    "run_campaign",
    "throughput_curve",
    "traced_run",
    "trigger_state_transfer",
    "view_change_latency",
]


_CRYPTO_MODES = ("null", "threshold", "multisig")


@dataclass(frozen=True, kw_only=True)
class Scenario:
    """One experiment described declaratively (all fields keyword-only).

    The single entry-point object of the facade: it composes the four
    config surfaces — :class:`ClusterConfig` (replica shape),
    :class:`ClientConfig` (client protocol), :class:`PipelineConfig`
    (batching/pipelining) and :class:`ShardConfig` (topology) — plus the
    run parameters, and every facade function consumes it.  Fields an
    entry point does not use (e.g. ``clients`` for :func:`traced_run`,
    which has its own light-load default) are simply ignored by it.

    Construction validates every field and raises
    :class:`~repro.common.errors.ConfigError` naming the offending one.
    Derive variants with :meth:`with_overrides`::

        base = Scenario(protocol="marlin", f=1)
        wide = base.with_overrides(f=5, clients=16384)
        sharded = base.with_overrides(shards=4)
    """

    #: "marlin", "hotstuff", "chained-marlin", "chained-hotstuff",
    #: "fast-hotstuff" or "insecure".
    protocol: str = "marlin"
    #: Fault tolerance; each consensus group has ``3f + 1`` replicas.
    f: int = 1
    #: Closed-loop client population for load points.
    clients: int = 4096
    #: Simulation seed (same seed, same trace).
    seed: int = 1
    #: Simulated run length / measurement warm-up, in seconds.
    sim_time: float = 22.0
    warmup: float = 7.0
    #: Client request/reply payload sizes, in bytes.
    request_size: int = 150
    reply_size: int = 150
    #: Crypto service: "null" (cost-model timing; the throughput
    #: methodology), "threshold" or "multisig" (real arithmetic).
    crypto: str = "null"
    #: Batching/pipelining knobs; None reproduces the unbatched seed
    #: behaviour exactly.
    pipeline: PipelineConfig | None = field(default=None)
    #: Client subsystem knobs; None (or ``mode="hub"``) reproduces the
    #: aggregate hub-client load model of the paper's evaluation, while
    #: ``ClientConfig(mode="real")`` drives the same population through
    #: genuine protocol clients (sessions, retransmits, reply
    #: certificates) over the simulated network.
    client: "ClientConfig | None" = field(default=None)
    #: Explicit per-group replica shape.  None derives the paper-testbed
    #: shape from ``f``; when given it is authoritative and ``f`` must
    #: either be left at its default or agree with ``cluster.f``.
    cluster: ClusterConfig | None = field(default=None)
    #: Topology: how many independent consensus groups, and how keys
    #: route to them.  ``shards=G`` is sugar for ``shard=ShardConfig(
    #: shards=G)``; give ``shard`` explicitly for router knobs.
    shard: "ShardConfig | None" = field(default=None)
    shards: int = 1
    #: Worker processes for the simulation itself (not the sweep): with
    #: ``des_jobs > 1`` a sharded load point runs each consensus group's
    #: simulator across that many spawn workers via
    #: :class:`repro.des.ParallelShardedCluster`, with results
    #: byte-identical to ``des_jobs=1``.  Requires ``shards >= 2``.
    des_jobs: int = 1
    #: Byzantine adversary injected into the run: the name of a
    #: registered scenario from :mod:`repro.adversary.scenarios` (e.g.
    #: ``"forking-attack"``) or an explicit
    #: :class:`~repro.adversary.behaviors.AdversaryConfig`.  Requires the
    #: single-group topology.  ``None`` (the default) is the
    #: failure-free run every benchmark number comes from.
    adversary: "str | AdversaryConfig | None" = field(default=None)

    def __post_init__(self) -> None:
        if self.protocol not in PROTOCOLS:
            raise ConfigError(
                f"Scenario.protocol must be one of {sorted(PROTOCOLS)}, "
                f"got {self.protocol!r}"
            )
        if self.f < 1:
            raise ConfigError(f"Scenario.f must be >= 1, got {self.f}")
        if self.clients < 1:
            raise ConfigError(f"Scenario.clients must be >= 1, got {self.clients}")
        if self.warmup < 0:
            raise ConfigError(f"Scenario.warmup must be >= 0, got {self.warmup}")
        if self.sim_time <= self.warmup:
            raise ConfigError(
                f"Scenario.sim_time must exceed warmup "
                f"({self.warmup}), got {self.sim_time}"
            )
        if self.request_size < 0:
            raise ConfigError(
                f"Scenario.request_size must be >= 0, got {self.request_size}"
            )
        if self.reply_size < 0:
            raise ConfigError(
                f"Scenario.reply_size must be >= 0, got {self.reply_size}"
            )
        if self.crypto not in _CRYPTO_MODES:
            raise ConfigError(
                f"Scenario.crypto must be one of {_CRYPTO_MODES}, got {self.crypto!r}"
            )
        if self.shards < 1:
            raise ConfigError(f"Scenario.shards must be >= 1, got {self.shards}")
        if self.shard is not None and self.shards != 1 and self.shards != self.shard.shards:
            raise ConfigError(
                f"Scenario.shards ({self.shards}) contradicts "
                f"Scenario.shard.shards ({self.shard.shards}); set one of them"
            )
        if self.des_jobs < 1:
            raise ConfigError(f"Scenario.des_jobs must be >= 1, got {self.des_jobs}")
        if self.des_jobs > 1 and self.resolved_shard().shards < 2:
            raise ConfigError(
                "Scenario.des_jobs > 1 parallelises per consensus group; "
                "set shards >= 2 (an unsharded run has nothing to decompose)"
            )
        if self.cluster is not None and self.f != 1 and self.f != self.cluster.f:
            raise ConfigError(
                f"Scenario.f ({self.f}) contradicts Scenario.cluster.f "
                f"({self.cluster.f}); the explicit cluster is authoritative"
            )
        if self.adversary is not None:
            if isinstance(self.adversary, str):
                try:
                    _get_adversary_scenario(self.adversary)
                except ValueError as exc:
                    raise ConfigError(f"Scenario.adversary: {exc}") from exc
            elif not isinstance(self.adversary, AdversaryConfig):
                raise ConfigError(
                    f"Scenario.adversary must be a scenario name or an "
                    f"AdversaryConfig, got {type(self.adversary).__name__}"
                )
            if self.resolved_shard().shards > 1:
                raise ConfigError(
                    "Scenario.adversary requires the single-group topology "
                    "(shards == 1)"
                )

    def with_overrides(self, **overrides) -> "Scenario":
        """A copy with the given fields replaced (and re-validated).

        Unknown names raise :class:`~repro.common.errors.ConfigError`
        naming the field, so typos fail loudly instead of silently
        returning an unchanged scenario.
        """
        known = {spec.name for spec in fields(self)}
        unknown = sorted(set(overrides) - known)
        if unknown:
            raise ConfigError(
                f"Scenario has no field(s) {', '.join(map(repr, unknown))}; "
                f"known fields: {', '.join(sorted(known))}"
            )
        return replace(self, **overrides)

    def resolved_shard(self) -> "ShardConfig":
        """The effective topology (``shard`` wins over the sugar field)."""
        if self.shard is not None:
            return self.shard
        return ShardConfig(shards=self.shards)


def _topology_kwargs(scenario: Scenario) -> dict:
    """The cluster/shard kwargs a scenario adds to a harness call.

    Only present when non-default, so unsharded task dicts (and thus
    sweep-cache keys) keep their established shape.
    """
    extra: dict = {}
    if scenario.cluster is not None:
        extra["cluster"] = scenario.cluster
    shard = scenario.resolved_shard()
    if shard.shards > 1:
        extra["shard"] = shard
    if scenario.des_jobs != 1:
        # Part of sweep-cache keys (task dicts are the payload), so a
        # des_jobs=4 point never aliases a des_jobs=1 one even though
        # the engines are proven byte-identical.
        extra["des_jobs"] = scenario.des_jobs
    if scenario.adversary is not None:
        # Also part of sweep-cache keys: an adversarial point must never
        # alias its failure-free twin.
        extra["adversary"] = scenario.adversary
    return extra


def load_point(scenario: Scenario, *, observability: RunObservability | None = None) -> RunResult:
    """Run one closed-loop load point (Fig. 10a-f methodology).

    With ``scenario.shards > 1`` the point runs G independent groups
    over one simulator and the result reports aggregate throughput,
    merged latency percentiles, and ``per_shard_tps``.
    """
    return _load_point(
        scenario.protocol,
        scenario.f,
        scenario.clients,
        sim_time=scenario.sim_time,
        warmup=scenario.warmup,
        request_size=scenario.request_size,
        reply_size=scenario.reply_size,
        seed=scenario.seed,
        observability=observability,
        pipeline=scenario.pipeline,
        crypto=scenario.crypto,
        client=scenario.client,
        **_topology_kwargs(scenario),
    )


def latency_breakdown(
    scenario: Scenario, *, sample_rate: float = 1.0
) -> tuple[RunResult, JourneyRecorder]:
    """Run one load point with end-to-end request-journey tracing.

    A deterministic, seed-derived ``sample_rate`` fraction of the client
    population is traced through its full lifecycle (submit → routing →
    admission → propose → per-phase QCs → commit → execution → reply
    certificate).  Returns ``(result, recorder)``: ``result.waterfall``
    carries the per-stage latency decomposition with the stage-sum
    reconciliation against the end-to-end recorder, and the
    :class:`JourneyRecorder` keeps the raw journeys for
    :func:`repro.obs.journey.slowest_journeys` /
    :func:`repro.obs.journey.write_chrome_trace`.  Works sharded.
    """
    result, recorder, _cluster = _latency_breakdown(
        scenario.protocol,
        f=scenario.f,
        clients=scenario.clients,
        sim_time=scenario.sim_time,
        warmup=scenario.warmup,
        seed=scenario.seed,
        sample_rate=sample_rate,
        request_size=scenario.request_size,
        reply_size=scenario.reply_size,
        crypto=scenario.crypto,
        client=scenario.client,
        pipeline=scenario.pipeline,
        **_topology_kwargs(scenario),
    )
    return result, recorder


def traced_run(
    scenario: Scenario,
    *,
    clients: int = 32,
    sim_time: float = 5.0,
    crash_leader_at: float | None = None,
    force_unhappy: bool = False,
    observability: RunObservability | None = None,
) -> tuple[DESCluster, RunObservability]:
    """Run a short, fully observed scenario for trace export.

    Light-load by design (``clients``/``sim_time`` default low and are
    separate from the scenario's throughput-oriented fields); returns
    ``(cluster, observability)`` with the tracer populated.
    """
    return _traced_scenario(
        scenario.protocol,
        f=scenario.f,
        seed=scenario.seed,
        sim_time=sim_time,
        clients=clients,
        crash_leader_at=crash_leader_at,
        force_unhappy=force_unhappy,
        observability=observability,
        pipeline=scenario.pipeline,
    )


def throughput_curve(
    scenario: Scenario,
    client_counts: list[int] | None = None,
    *,
    latency_cap: float = LATENCY_CAP,
    observability: RunObservability | None = None,
    jobs: int = 1,
    use_cache: bool = False,
    cache_dir: str | None = None,
) -> list[RunResult]:
    """Sweep client counts until mean latency crosses ``latency_cap``.

    ``jobs`` runs the independent points across that many worker
    processes and ``use_cache`` reuses on-disk results (keyed by scenario
    and code fingerprint; see :mod:`repro.harness.parallel`).  Either
    way the returned curve is byte-identical to the serial sweep.
    """
    if client_counts is None:
        client_counts = default_client_sweep(scenario.f)
    return _throughput_latency_curve(
        scenario.protocol,
        scenario.f,
        client_counts,
        latency_cap,
        jobs=jobs,
        use_cache=use_cache,
        cache_dir=cache_dir,
        observability=observability,
        sim_time=scenario.sim_time,
        warmup=scenario.warmup,
        request_size=scenario.request_size,
        reply_size=scenario.reply_size,
        seed=scenario.seed,
        pipeline=scenario.pipeline,
        crypto=scenario.crypto,
        client=scenario.client,
        **_topology_kwargs(scenario),
    )


def peak_throughput(
    scenario: Scenario,
    client_counts: list[int] | None = None,
    *,
    latency_cap: float = LATENCY_CAP,
    jobs: int = 1,
    use_cache: bool = False,
    cache_dir: str | None = None,
    strategy: str = "sweep",
) -> tuple[float, list[RunResult]]:
    """Peak throughput at the latency cap, plus the raw curve.

    ``strategy="bisect"`` binary-searches the client grid for the cap
    crossing instead of sweeping it linearly (valid because closed-loop
    latency is monotone in the population); combine with ``jobs`` for
    parallel probing.
    """
    return _peak_throughput(
        scenario.protocol,
        scenario.f,
        client_counts,
        latency_cap,
        jobs=jobs,
        use_cache=use_cache,
        cache_dir=cache_dir,
        strategy=strategy,
        sim_time=scenario.sim_time,
        warmup=scenario.warmup,
        request_size=scenario.request_size,
        reply_size=scenario.reply_size,
        seed=scenario.seed,
        pipeline=scenario.pipeline,
        crypto=scenario.crypto,
        client=scenario.client,
        **_topology_kwargs(scenario),
    )


# ---------------------------------------------------------------------------
# Recovery surface (asyncio runtime)


async def restart_replica(cluster: LocalCluster, replica_id: int) -> Node:
    """Crash-recover one replica of a :class:`LocalCluster` from disk.

    Facade over :meth:`LocalCluster.restart` so scripted churn scenarios
    never import ``repro.runtime.node`` internals.  Requires the cluster
    to have been built with ``data_dirs``.
    """
    return await cluster.restart(replica_id)


def trigger_state_transfer(cluster: LocalCluster, replica_id: int) -> None:
    """Make one replica fetch a checkpoint + chain suffix from its peers.

    The replica asks the cluster for the latest stable checkpoint and
    replays forward — the path a node far behind the commit frontier
    (e.g. after a long partition) uses to catch up without full WAL
    replay.
    """
    cluster.nodes[replica_id].request_state_transfer()
