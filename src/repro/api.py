"""repro.api — the stable public facade.

Everything a paper-reproduction script, notebook or CI job should need
lives here under names that will not churn:

* :class:`Scenario` — keyword-only experiment description shared by the
  entry points, replacing the loose ``f/seed/batch/**cluster_kwargs``
  threading of the old harness functions.
* :func:`load_point` / :func:`throughput_curve` / :func:`peak_throughput`
  — the Fig. 10 throughput/latency methodology.
* :func:`traced_run` — a short, fully observed run for trace export.
* Re-exports of the configuration, runtime, and observability types the
  above produce and consume.

The old ``repro.harness.scenarios`` entry points still work but emit
:class:`DeprecationWarning`; new code should import from here::

    from repro.api import Scenario, load_point

    result = load_point(Scenario(protocol="marlin", f=1, clients=4096))
    print(result.as_row())
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.client import ClientConfig, ClientSession, ReplyCertificate
from repro.common.config import (
    ClusterConfig,
    ExperimentConfig,
    MachineProfile,
    NetworkProfile,
)
from repro.consensus.pipeline import PipelineConfig
from repro.harness.audit import (
    AuditReport,
    ComplexitySweep,
    audited_run,
    complexity_sweep,
)
from repro.harness.des_runtime import DESCluster
from repro.harness.metrics import RunResult
from repro.harness.scenarios import (
    DEFAULT_MAX_BATCH,
    LATENCY_CAP,
    NormalCaseCost,
    ViewChangeCost,
    ViewChangeResult,
    _load_point,
    _peak_throughput,
    _throughput_latency_curve,
    _traced_scenario,
    default_client_sweep,
    measure_normal_case_cost,
    measure_view_change_cost,
    peak_at_latency_cap,
    rotating_leader_throughput,
    view_change_latency,
)
from repro.harness.parallel import ResultCache, SweepExecutor, code_fingerprint
from repro.harness.workload import ClosedLoopClients
from repro.obs.complexity import ComplexityObservatory, SlopeFit
from repro.obs.flight import FlightRecorder, read_blackbox
from repro.obs.observer import RunObservability
from repro.runtime.cluster import LocalClient, LocalCluster

__all__ = [
    "AuditReport",
    "ClientConfig",
    "ClientSession",
    "ClosedLoopClients",
    "ClusterConfig",
    "ComplexityObservatory",
    "ComplexitySweep",
    "DEFAULT_MAX_BATCH",
    "DESCluster",
    "ExperimentConfig",
    "FlightRecorder",
    "LATENCY_CAP",
    "LocalClient",
    "LocalCluster",
    "MachineProfile",
    "NetworkProfile",
    "NormalCaseCost",
    "PipelineConfig",
    "ReplyCertificate",
    "ResultCache",
    "RunObservability",
    "RunResult",
    "Scenario",
    "SlopeFit",
    "SweepExecutor",
    "ViewChangeCost",
    "ViewChangeResult",
    "audited_run",
    "code_fingerprint",
    "complexity_sweep",
    "default_client_sweep",
    "load_point",
    "measure_normal_case_cost",
    "measure_view_change_cost",
    "peak_at_latency_cap",
    "peak_throughput",
    "read_blackbox",
    "rotating_leader_throughput",
    "throughput_curve",
    "traced_run",
    "view_change_latency",
]


@dataclass(frozen=True, kw_only=True)
class Scenario:
    """One experiment described declaratively (all fields keyword-only).

    The same object drives every facade entry point; fields an entry
    point does not use (e.g. ``clients`` for :func:`traced_run`, which
    has its own light-load default) are simply ignored by it.
    """

    #: "marlin", "hotstuff", "chained-marlin", "chained-hotstuff",
    #: "fast-hotstuff" or "insecure".
    protocol: str = "marlin"
    #: Fault tolerance; the cluster has ``3f + 1`` replicas.
    f: int = 1
    #: Closed-loop client population for load points.
    clients: int = 4096
    #: Simulation seed (same seed, same trace).
    seed: int = 1
    #: Simulated run length / measurement warm-up, in seconds.
    sim_time: float = 22.0
    warmup: float = 7.0
    #: Client request/reply payload sizes, in bytes.
    request_size: int = 150
    reply_size: int = 150
    #: Crypto service: "null" (cost-model timing; the throughput
    #: methodology), "threshold" or "multisig" (real arithmetic).
    crypto: str = "null"
    #: Batching/pipelining knobs; None reproduces the unbatched seed
    #: behaviour exactly.
    pipeline: PipelineConfig | None = field(default=None)
    #: Client subsystem knobs; None (or ``mode="hub"``) reproduces the
    #: aggregate hub-client load model of the paper's evaluation, while
    #: ``ClientConfig(mode="real")`` drives the same population through
    #: genuine protocol clients (sessions, retransmits, reply
    #: certificates) over the simulated network.
    client: "ClientConfig | None" = field(default=None)


def load_point(scenario: Scenario, *, observability: RunObservability | None = None) -> RunResult:
    """Run one closed-loop load point (Fig. 10a-f methodology)."""
    return _load_point(
        scenario.protocol,
        scenario.f,
        scenario.clients,
        sim_time=scenario.sim_time,
        warmup=scenario.warmup,
        request_size=scenario.request_size,
        reply_size=scenario.reply_size,
        seed=scenario.seed,
        observability=observability,
        pipeline=scenario.pipeline,
        crypto=scenario.crypto,
        client=scenario.client,
    )


def traced_run(
    scenario: Scenario,
    *,
    clients: int = 32,
    sim_time: float = 5.0,
    crash_leader_at: float | None = None,
    force_unhappy: bool = False,
    observability: RunObservability | None = None,
) -> tuple[DESCluster, RunObservability]:
    """Run a short, fully observed scenario for trace export.

    Light-load by design (``clients``/``sim_time`` default low and are
    separate from the scenario's throughput-oriented fields); returns
    ``(cluster, observability)`` with the tracer populated.
    """
    return _traced_scenario(
        scenario.protocol,
        f=scenario.f,
        seed=scenario.seed,
        sim_time=sim_time,
        clients=clients,
        crash_leader_at=crash_leader_at,
        force_unhappy=force_unhappy,
        observability=observability,
        pipeline=scenario.pipeline,
    )


def throughput_curve(
    scenario: Scenario,
    client_counts: list[int] | None = None,
    *,
    latency_cap: float = LATENCY_CAP,
    observability: RunObservability | None = None,
    jobs: int = 1,
    use_cache: bool = False,
    cache_dir: str | None = None,
) -> list[RunResult]:
    """Sweep client counts until mean latency crosses ``latency_cap``.

    ``jobs`` runs the independent points across that many worker
    processes and ``use_cache`` reuses on-disk results (keyed by scenario
    and code fingerprint; see :mod:`repro.harness.parallel`).  Either
    way the returned curve is byte-identical to the serial sweep.
    """
    if client_counts is None:
        client_counts = default_client_sweep(scenario.f)
    return _throughput_latency_curve(
        scenario.protocol,
        scenario.f,
        client_counts,
        latency_cap,
        jobs=jobs,
        use_cache=use_cache,
        cache_dir=cache_dir,
        observability=observability,
        sim_time=scenario.sim_time,
        warmup=scenario.warmup,
        request_size=scenario.request_size,
        reply_size=scenario.reply_size,
        seed=scenario.seed,
        pipeline=scenario.pipeline,
        crypto=scenario.crypto,
        client=scenario.client,
    )


def peak_throughput(
    scenario: Scenario,
    client_counts: list[int] | None = None,
    *,
    latency_cap: float = LATENCY_CAP,
    jobs: int = 1,
    use_cache: bool = False,
    cache_dir: str | None = None,
    strategy: str = "sweep",
) -> tuple[float, list[RunResult]]:
    """Peak throughput at the latency cap, plus the raw curve.

    ``strategy="bisect"`` binary-searches the client grid for the cap
    crossing instead of sweeping it linearly (valid because closed-loop
    latency is monotone in the population); combine with ``jobs`` for
    parallel probing.
    """
    return _peak_throughput(
        scenario.protocol,
        scenario.f,
        client_counts,
        latency_cap,
        jobs=jobs,
        use_cache=use_cache,
        cache_dir=cache_dir,
        strategy=strategy,
        sim_time=scenario.sim_time,
        warmup=scenario.warmup,
        request_size=scenario.request_size,
        reply_size=scenario.reply_size,
        seed=scenario.seed,
        pipeline=scenario.pipeline,
        crypto=scenario.crypto,
        client=scenario.client,
    )
