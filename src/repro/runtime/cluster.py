"""LocalCluster: an n-node asyncio deployment in one process.

Used by the examples and the asyncio integration tests.  Supports the
in-process queue transport (default) or real TCP sockets on localhost.

Typical use::

    cluster = LocalCluster(f=1, protocol="marlin")
    async with cluster:
        await cluster.submit(b"payload")
        await cluster.wait_for_height(1)
"""

from __future__ import annotations

import asyncio
import itertools
from typing import Any, Iterable

from repro.client.config import ClientConfig
from repro.client.runtime import LocalClient
from repro.common.config import ClusterConfig
from repro.consensus.crypto_service import ThresholdCryptoService
from repro.consensus.messages import ClientRequest
from repro.consensus.pipeline import PipelineConfig
from repro.crypto.keys import KeyRegistry
from repro.network.asyncio_net import AsyncioNetwork, TcpNetwork
from repro.runtime.node import Node


class LocalCluster:
    """All replicas of one BFT cluster running on the current event loop."""

    def __init__(
        self,
        f: int = 1,
        protocol: str = "marlin",
        transport: str = "queue",
        base_timeout: float = 1.0,
        batch_size: int | None = None,
        rotation_interval: float | None = None,
        data_dirs: list[str] | None = None,
        network_delay: float = 0.0,
        seed: int = 0,
        observability: Any | None = None,
        pipeline: PipelineConfig | None = None,
        client_config: ClientConfig | None = None,
        crypto: ThresholdCryptoService | None = None,
    ) -> None:
        # batch_size=None defers to the ClusterConfig default, keeping
        # repro.common.config the single source of truth for it.
        if batch_size is None:
            self.config = ClusterConfig.for_f(f, base_timeout=base_timeout)
        else:
            self.config = ClusterConfig.for_f(
                f, batch_size=batch_size, base_timeout=base_timeout
            )
        #: Optional repro.obs.observer.RunObservability shared by the
        #: transport and every node's replica.
        self.observability = observability
        self.pipeline = pipeline
        if crypto is None:
            # Key setup dominates construction cost; a sharded deployment
            # (repro.shard.ShardedLocalCluster) passes one shared service
            # so G same-shape groups pay it once.
            registry = KeyRegistry(
                self.config.num_replicas, self.config.quorum, seed=str(seed)
            )
            crypto = ThresholdCryptoService(registry)
        self.crypto = crypto
        if observability is not None:
            self.crypto.bind_metrics(observability.registry)
        if transport == "queue":
            self.network: AsyncioNetwork | TcpNetwork = AsyncioNetwork(
                delay=network_delay,
                seed=seed,
                metrics=observability.net if observability is not None else None,
            )
        elif transport == "tcp":
            self.network = TcpNetwork(base_port=29000 + seed % 1000 * 100)
        else:
            raise ValueError(f"unknown transport {transport!r}")
        self._transport_kind = transport
        self.protocol = protocol
        self.rotation_interval = rotation_interval
        self._data_dirs = data_dirs
        self.client_config = client_config
        self.nodes: list[Node] = []
        self._client_seq = itertools.count()
        self._clients: list[LocalClient] = []
        self._started = False

    async def start(self) -> None:
        """Create nodes, bind the transport, and boot every replica."""
        for replica_id in range(self.config.num_replicas):
            data_dir = self._data_dirs[replica_id] if self._data_dirs else None
            node = Node(
                replica_id=replica_id,
                config=self.config,
                transport=self.network,
                crypto=self.crypto,
                protocol=self.protocol,
                data_dir=data_dir,
                rotation_interval=self.rotation_interval,
                observability=self.observability,
                pipeline=self.pipeline,
                client_config=self.client_config,
            )
            self.nodes.append(node)
        online = getattr(self.observability, "auditor", None)
        if online is not None:
            online.configure(
                self.config.num_replicas,
                self.config.quorum,
                qc_validator=self.crypto.qc_is_valid,
            )
            add_tap = getattr(self.network, "add_tap", None)
            if add_tap is not None:
                add_tap(online.tap)
            for node in self.nodes:
                node.replica.commit_listeners.append(
                    self._online_commit_listener(online, node.id)
                )
        if isinstance(self.network, TcpNetwork):
            await self.network.start()
            await self.network.connect_all()
        for node in self.nodes:
            node.start()
        self._started = True
        await asyncio.sleep(0)

    @staticmethod
    def _online_commit_listener(online: Any, replica_id: int) -> Any:
        def listener(block: Any, when: float) -> None:
            online.on_commit_block(replica_id, block, when)

        return listener

    async def stop(self) -> None:
        for client in self._clients:
            client.close()
        self._clients.clear()
        for node in self.nodes:
            node.stop()
        close = getattr(self.network, "close", None)
        if close is not None:
            await close()
        self._started = False

    async def __aenter__(self) -> "LocalCluster":
        await self.start()
        return self

    async def __aexit__(self, *exc: object) -> None:
        await self.stop()

    # ------------------------------------------------------------- clients

    def client(
        self, client_id: int | None = None, config: ClientConfig | None = None
    ) -> LocalClient:
        """Create a protocol client endpoint on this cluster's transport.

        Unlike :meth:`submit` (fire-and-forget broadcast), a
        :class:`LocalClient` runs the full client protocol: leader
        routing, retransmits, and ``f + 1``-matching reply certificates.
        Endpoint ids are allocated from 20_000 upward when not given.
        """
        if client_id is None:
            client_id = 20_000 + len(self._clients)
        local = LocalClient(self, client_id, config or self.client_config)
        self._clients.append(local)
        return local

    async def submit(self, payload: bytes, client_id: int = 10_000) -> int:
        """Submit one operation to the cluster; returns its sequence number.

        The request goes to every replica (non-leaders forward or hold),
        so it survives leader changes.
        """
        sequence = next(self._client_seq)
        request = ClientRequest(client_id=client_id, sequence=sequence, payload=payload)
        for node in self.nodes:
            node.replica.on_message(-1, request)
        await asyncio.sleep(0)
        return sequence

    async def submit_many(self, payloads: Iterable[bytes], client_id: int = 10_000) -> int:
        last = -1
        for payload in payloads:
            last = await self.submit(payload, client_id)
        return last

    # ------------------------------------------------------------ queries

    def committed_heights(self) -> list[int]:
        return [node.committed_height for node in self.nodes]

    async def wait_for_height(self, height: int, timeout: float = 30.0, quorum_only: bool = True) -> None:
        """Wait until replicas reach ``height`` (a quorum, or all)."""
        nodes = self.nodes
        needed = self.config.quorum if quorum_only else len(nodes)
        deadline = asyncio.get_event_loop().time() + timeout
        while True:
            reached = sum(1 for node in nodes if node.committed_height >= height)
            if reached >= needed:
                return
            if asyncio.get_event_loop().time() > deadline:
                raise TimeoutError(
                    f"only {reached}/{needed} nodes reached height {height}: "
                    f"{self.committed_heights()}"
                )
            await asyncio.sleep(0.01)

    def crash(self, replica_id: int) -> None:
        """Crash-stop one node (timers cancelled, messages ignored)."""
        self.nodes[replica_id].crash()

    async def restart(self, replica_id: int) -> Node:
        """Bring a crashed node back from its durable storage.

        The new node recovers its committed chain, application state and
        consensus variables from the data directory, re-registers on the
        transport (replacing the dead handler) and rejoins the cluster.
        Requires ``data_dirs`` to have been configured.
        """
        if self._data_dirs is None:
            raise ValueError("restart requires data_dirs")
        old = self.nodes[replica_id]
        old.crash()
        old.kv.close()
        node = Node(
            replica_id=replica_id,
            config=self.config,
            transport=self.network,
            crypto=self.crypto,
            protocol=self.protocol,
            data_dir=self._data_dirs[replica_id],
            rotation_interval=self.rotation_interval,
            observability=self.observability,
            pipeline=self.pipeline,
            client_config=self.client_config,
        )
        self.nodes[replica_id] = node
        node.start()
        await asyncio.sleep(0)
        return node

    def state_digests(self) -> list[bytes]:
        """Application state digest per node (equal on agreeing replicas)."""
        return [node.app.state_digest() for node in self.nodes]
