"""Real asyncio runtime for the sans-io protocol cores.

The DES answers "what would the paper's testbed measure"; this package
answers "does the protocol actually run concurrently": replicas execute
on a live event loop, persist committed blocks to the from-scratch KV
store, run checkpointing, and serve a real application state machine.

* :mod:`repro.runtime.node` — :class:`AsyncioContext` + :class:`Node`
  (replica + storage + app);
* :mod:`repro.runtime.cluster` — :class:`LocalCluster`, an n-node
  in-process deployment over :class:`~repro.network.asyncio_net.AsyncioNetwork`
  (or TCP);
* :mod:`repro.runtime.app` — the replicated key-value state machine used
  by the examples.
"""

from repro.runtime.app import KVStateMachine
from repro.runtime.cluster import LocalCluster
from repro.runtime.node import AsyncioContext, Node

__all__ = ["AsyncioContext", "KVStateMachine", "LocalCluster", "Node"]
