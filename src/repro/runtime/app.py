"""The replicated application: a tiny key-value state machine.

Operations are canonical-encoded commands applied in commit order:

* ``["set", key, value]`` — write;
* ``["del", key]`` — delete;
* ``["add", key, delta]`` — integer increment (the bank example), which
  creates the account at 0 on first touch;
* ``["get", key]`` — ordered read: goes through consensus like a write
  (the ``reads="commit"`` client path) and returns the value.

:meth:`KVStateMachine.apply` returns the operation's *result bytes* —
empty for writes, the stored value for reads, the new balance for adds —
which is what replica replies digest and clients certify.

Every replica applying the same committed sequence reaches the same
state; :meth:`state_digest` lets tests and examples check that in one
comparison.
"""

from __future__ import annotations

from repro.common.encoding import decode, encode
from repro.common.errors import ReproError
from repro.consensus.block import Block, Operation
from repro.crypto.hashing import digest_of
from repro.storage.kvstore import KVStore


class AppError(ReproError):
    """An operation payload was malformed or inapplicable."""


class KVStateMachine:
    """Deterministic KV application; optionally persists via a KVStore."""

    def __init__(self, store: KVStore | None = None) -> None:
        self._state: dict[bytes, bytes] = {}
        self._store = store
        self._applied = 0

    @property
    def applied(self) -> int:
        return self._applied

    @staticmethod
    def encode_set(key: bytes, value: bytes) -> bytes:
        return encode(["set", key, value])

    @staticmethod
    def encode_delete(key: bytes) -> bytes:
        return encode(["del", key])

    @staticmethod
    def encode_add(key: bytes, delta: int) -> bytes:
        return encode(["add", key, delta])

    def apply(self, block: Block, op: Operation) -> bytes:
        """Execution callback for :meth:`repro.consensus.ledger.Ledger`.

        Returns the operation's result bytes (what a replica's reply to
        the client commits to).
        """
        if not op.payload:
            self._applied += 1
            return b""  # no-op operation (the paper's Fig. 10h workload)
        try:
            command = decode(op.payload)
        except ReproError as exc:
            raise AppError(f"undecodable operation payload: {exc}") from exc
        if not isinstance(command, list) or not command:
            raise AppError("operation must decode to a non-empty list")
        verb = command[0]
        result = b""
        if verb == "set" and len(command) == 3:
            self._write(command[1], command[2])
        elif verb == "del" and len(command) == 2:
            self._state.pop(command[1], None)
            if self._store is not None:
                self._store.delete(b"app:" + command[1])
        elif verb == "add" and len(command) == 3:
            current = int.from_bytes(self._state.get(command[1], b"\0" * 8), "big", signed=True)
            updated = current + int(command[2])
            result = updated.to_bytes(8, "big", signed=True)
            self._write(command[1], result)
        elif verb == "get" and len(command) == 2:
            result = self._state.get(command[1], b"")
        else:
            raise AppError(f"unknown command {command[:1]!r}")
        self._applied += 1
        return result

    @staticmethod
    def encode_get(key: bytes) -> bytes:
        return encode(["get", key])

    def _write(self, key: bytes, value: bytes) -> None:
        self._state[key] = value
        if self._store is not None:
            self._store.put(b"app:" + key, value)

    def get(self, key: bytes) -> bytes | None:
        return self._state.get(key)

    def balance(self, key: bytes) -> int:
        raw = self._state.get(key)
        if raw is None:
            return 0
        return int.from_bytes(raw, "big", signed=True)

    def state_digest(self) -> bytes:
        """Order-independent digest of the full state."""
        return digest_of(sorted(self._state.items()))

    def install_entries(self, entries: "tuple[tuple[bytes, bytes], ...]") -> None:
        """Replace state with a snapshot's entries (state transfer)."""
        self._state = {}
        for key, value in entries:
            self._write(key, value)

    def entries(self) -> tuple[tuple[bytes, bytes], ...]:
        """Export the full state (serving a state transfer)."""
        return tuple(sorted(self._state.items()))

    def load_from_store(self) -> int:
        """Rebuild in-memory state from the backing store (recovery).

        Returns the number of keys loaded.  Requires a backing store.
        """
        if self._store is None:
            raise AppError("no backing store to recover from")
        count = 0
        for key, value in self._store.scan(b"app:"):
            self._state[key[len(b"app:"):]] = value
            count += 1
        return count
