"""Asyncio node: one replica on a live event loop, with real storage.

:class:`AsyncioContext` satisfies the sans-io
:class:`~repro.consensus.context.NodeContext` contract with
``loop.call_later`` timers and a real transport.  :class:`Node` bundles a
protocol replica with the storage stack the paper's evaluation used:
committed blocks go to the from-scratch KV store, a
:class:`~repro.storage.checkpoint.CheckpointManager` trims history, and a
:class:`~repro.runtime.app.KVStateMachine` executes operations.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable

from repro.client.config import ClientConfig
from repro.client.service import ClientService
from repro.common.config import ClusterConfig
from repro.common.encoding import encode
from repro.consensus.block import Block
from repro.consensus.context import NodeContext
from repro.consensus.crypto_service import CryptoService
from repro.consensus.hotstuff.replica import HotStuffReplica
from repro.consensus.marlin.replica import MarlinReplica
from repro.consensus.messages import StateTransferRequest, StateTransferResponse
from repro.consensus.pipeline import PipelineConfig
from repro.consensus.replica_base import ReplicaBase
from repro.network.transport import Transport
from repro.runtime.app import KVStateMachine
from repro.storage.blockstore import BlockStore
from repro.storage.checkpoint import CheckpointManager
from repro.storage.kvstore import KVStore


class AsyncioContext(NodeContext):
    """NodeContext over a live asyncio loop and a real transport."""

    def __init__(self, transport: Transport, replica_id: int, num_replicas: int) -> None:
        self._transport = transport
        self._id = replica_id
        self._n = num_replicas
        self._timers: dict[str, asyncio.TimerHandle] = {}
        self._loop = asyncio.get_event_loop()

    @property
    def now(self) -> float:
        return self._loop.time()

    def send(self, dst: int, payload: Any) -> None:
        self._transport.send(self._id, dst, payload)

    def broadcast(self, payload: Any) -> None:
        for dst in range(self._n):
            self._transport.send(self._id, dst, payload)

    def set_timer(self, name: str, delay: float, callback: Callable[[], None]) -> None:
        self.cancel_timer(name)
        self._timers[name] = self._loop.call_later(delay, callback)

    def cancel_timer(self, name: str) -> None:
        handle = self._timers.pop(name, None)
        if handle is not None:
            handle.cancel()

    def cancel_all(self) -> None:
        for name in list(self._timers):
            self.cancel_timer(name)

    def charge(self, seconds: float) -> None:
        """Wall-clock runtime: CPU time is real, nothing to account."""


def _serialize_block(block: Block) -> bytes:
    from repro.network import codec

    return codec.encode_block(block)


class Node:
    """A protocol replica plus its storage stack and application."""

    PROTOCOLS = {"marlin": MarlinReplica, "hotstuff": HotStuffReplica}

    def __init__(
        self,
        replica_id: int,
        config: ClusterConfig,
        transport: Transport,
        crypto: CryptoService,
        protocol: str = "marlin",
        data_dir: str | None = None,
        rotation_interval: float | None = None,
        observability: Any | None = None,
        pipeline: PipelineConfig | None = None,
        client_config: "ClientConfig | None" = None,
    ) -> None:
        self.id = replica_id
        self.ctx = AsyncioContext(transport, replica_id, config.num_replicas)
        replica_cls = self.PROTOCOLS[protocol]
        # Runtime clients broadcast requests to every node (see
        # LocalCluster.submit), so replicas hold operations locally
        # rather than forwarding to a leader that may be about to crash.
        self.replica: ReplicaBase = replica_cls(
            replica_id=replica_id,
            config=config,
            ctx=self.ctx,
            crypto=crypto,
            rotation_interval=rotation_interval,
            forward_requests=False,
            pipeline=pipeline,
        )
        if observability is not None:
            # Same RunObservability type the DES harness takes; spans get
            # wall-clock timestamps from AsyncioContext.now.
            self.replica.attach_observer(
                observability.replica_obs(replica_id, self.replica.protocol_name)
            )
        self.kv = KVStore(directory=data_dir)
        self.blockstore = BlockStore(kv=self.kv, serializer=_serialize_block)
        self.app = KVStateMachine(store=self.kv)
        self.checkpoints = CheckpointManager(
            interval=config.checkpoint_interval, blockstore=self.blockstore, kv=self.kv
        )
        # The client service wraps the application executor: it runs
        # app.apply under the ledger's exactly-once guard, caches the
        # reply per client session, and answers retransmits from that
        # cache instead of re-executing.
        self.client_service = ClientService(
            self.replica,
            client_config,
            result_fn=self.app.apply,
            read_fn=lambda key: self.app.get(key) or b"",
        ).install()
        self.replica.ledger.set_executor(self.client_service.execute)
        self.replica.commit_listeners.append(self._persist_commit)
        self.alive = True
        self._recovered_view: int | None = None
        self._awaiting_state_transfer = False
        self._st_responses: dict[bytes, dict[int, StateTransferResponse]] = {}
        if data_dir is not None:
            self._recover()
        transport.register(replica_id, self._on_message)
        self.commit_event = asyncio.Event()

    def _on_message(self, src: int, payload: Any) -> None:
        if not self.alive:
            return
        if isinstance(payload, StateTransferRequest):
            self._serve_state_transfer(src, payload)
            return
        if isinstance(payload, StateTransferResponse):
            self._on_state_transfer_response(src, payload)
            return
        self.replica.on_message(src, payload)

    # -------------------------------------------------- state transfer

    def _serve_state_transfer(self, src: int, request: StateTransferRequest) -> None:
        """Answer a peer's snapshot request from local committed state."""
        ledger = self.replica.ledger
        if ledger.committed_height <= request.have_height:
            return
        head = ledger.committed_head
        recent = tuple(
            block
            for block in self.replica.tree.branch(head)
            if not block.is_genesis
        )[:8]
        self.ctx.send(
            src,
            StateTransferResponse(
                committed_height=ledger.committed_height,
                head=head,
                recent_blocks=recent,
                app_entries=self.app.entries(),
            ),
        )

    def _on_state_transfer_response(self, src: int, response: StateTransferResponse) -> None:
        """Install a snapshot once f+1 peers agree on the head digest.

        f+1 matching responses guarantee at least one came from a correct
        replica, so the snapshot reflects a genuinely committed state.
        """
        if not self._awaiting_state_transfer or response.head is None:
            return
        if response.committed_height <= self.replica.ledger.committed_height:
            return
        digest = response.head.digest
        bucket = self._st_responses.setdefault(digest, {})
        bucket[src] = response
        f = (self.replica.config.num_replicas - 1) // 3
        if len(bucket) < f + 1:
            return
        self._awaiting_state_transfer = False
        self._st_responses.clear()
        head = response.head
        for block in (head, *response.recent_blocks):
            self.replica.tree.add(block)
            self.blockstore.add(block)
        self.replica.ledger.install_snapshot(head)
        self.app.install_entries(response.app_entries)
        for key, value in response.app_entries:
            self.kv.put(b"app:" + key, value)
        self.kv.put(b"meta:committed_height", str(head.height).encode())
        self.kv.put(b"chain:%012d" % head.height, head.digest)
        self.commit_event.set()

    def request_state_transfer(self) -> None:
        """Broadcast a snapshot request to every peer (fresh-disk boot)."""
        self._awaiting_state_transfer = True
        request = StateTransferRequest(have_height=self.replica.ledger.committed_height)
        for peer in range(self.replica.config.num_replicas):
            if peer != self.id:
                self.ctx.send(peer, request)

    def _persist_commit(self, block: Block, when: float) -> None:
        self.blockstore.add(block)
        self.kv.put(b"meta:committed_height", str(block.height).encode())
        self.kv.put(b"chain:%012d" % block.height, block.digest)
        self._persist_consensus_state()
        self.checkpoints.on_commit(block, block.height)
        self.commit_event.set()

    # ------------------------------------------------------- durability

    def _persist_consensus_state(self) -> None:
        """Write the consensus-critical variables for crash recovery.

        Persisted at commit time: a replica restarting from this state
        rejoins at its last committed view.  (Votes between the last
        commit and the crash are not persisted — the recovering replica
        may re-enter a view it voted in, which is safe for crash faults;
        Byzantine-proof restart would persist before every vote.)
        """
        from repro.network import codec

        replica = self.replica
        if hasattr(replica, "last_voted"):
            state = [
                "marlin",
                replica.cview,
                codec.encode_summary(replica.last_voted),
                codec.encode_qc(replica.locked_qc),
                codec.encode_justify(replica.high_qc),
            ]
        else:
            state = [
                "hotstuff",
                replica.cview,
                codec.encode_qc(replica.prepare_qc),
                codec.encode_qc(replica.locked_qc),
            ]
        self.kv.put(b"meta:consensus", encode(state))

    def _recover(self) -> bool:
        """Rebuild replica state from the KV store; True if restored.

        Requires the full committed chain to be present (a checkpoint may
        have pruned history, in which case recovery falls back to a fresh
        start — state transfer from peers then happens via block sync).
        """
        from repro.common.encoding import decode
        from repro.network import codec

        height_raw = self.kv.get(b"meta:committed_height")
        state_raw = self.kv.get(b"meta:consensus")
        if height_raw is None or state_raw is None:
            return False
        height = int(height_raw)
        blocks: list[Block] = []
        pruned = False
        for h in range(1, height + 1):
            digest = self.kv.get(b"chain:%012d" % h)
            raw = self.kv.get(b"block:" + digest) if digest is not None else None
            if raw is None:
                pruned = True  # checkpointing trimmed this prefix
                blocks.clear()
                continue
            blocks.append(codec.decode_block(raw))
        replica = self.replica
        if pruned:
            # Snapshot restore: adopt the newest contiguous suffix's head
            # (always present — it was just committed) and the persisted
            # application state; earlier history stays pruned.
            if not blocks:
                return False
            for block in blocks:
                replica.tree.add(block)
                self.blockstore.add(block)
            replica.ledger.install_snapshot(blocks[0])
            for block in blocks[1:]:
                replica.ledger.mark_committed(block)
        else:
            for block in blocks:
                replica.tree.add(block)
                self.blockstore.add(block)
                replica.ledger.mark_committed(block)
        self.app.load_from_store()
        state = decode(state_raw)
        if state[0] == "marlin":
            replica.cview = state[1] - 1  # start() re-enters the stored view
            replica.last_voted = codec.decode_summary(state[2])
            replica.locked_qc = codec.decode_qc(state[3])
            replica.high_qc = codec.decode_justify(state[4])
        else:
            replica.cview = state[1] - 1
            replica.prepare_qc = codec.decode_qc(state[2])
            replica.locked_qc = codec.decode_qc(state[3])
        self._recovered_view = state[1]
        return True

    def start(self) -> None:
        if getattr(self, "_recovered_view", None):
            # Re-enter the persisted view (sends the VIEW-CHANGE, arms
            # the pacemaker); catch-up handles a cluster that moved on.
            self.replica._advance_view(self._recovered_view)
        else:
            self.replica.start()

    def stop(self) -> None:
        self.ctx.cancel_all()
        self.replica.close()
        self.kv.close()

    def crash(self) -> None:
        """Crash-stop: ignore all future messages, cancel all timers."""
        self.alive = False
        self.ctx.cancel_all()

    @property
    def committed_height(self) -> int:
        return self.replica.ledger.committed_height

    async def wait_for_height(self, height: int, timeout: float = 30.0) -> None:
        """Block until this node commits up to ``height``."""
        deadline = asyncio.get_event_loop().time() + timeout
        while self.committed_height < height:
            remaining = deadline - asyncio.get_event_loop().time()
            if remaining <= 0:
                raise TimeoutError(
                    f"node {self.id} stuck at height {self.committed_height} < {height}"
                )
            self.commit_event.clear()
            try:
                await asyncio.wait_for(self.commit_event.wait(), timeout=min(remaining, 1.0))
            except asyncio.TimeoutError:
                continue
