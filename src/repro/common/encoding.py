"""Canonical binary encoding for protocol data.

All signed material (blocks, votes, QC payloads) must be encoded the same
way on every replica, otherwise digests and signatures would diverge.  This
module implements a tiny, deterministic, self-describing binary codec:

* integers  -> tag ``i`` + 8-byte big-endian two's complement
* bytes     -> tag ``b`` + 4-byte length + payload
* strings   -> tag ``s`` + 4-byte length + UTF-8 payload
* None      -> tag ``n``
* booleans  -> tag ``t`` / ``f``
* tuples/lists -> tag ``l`` + 4-byte count + encoded items
* dicts     -> tag ``d`` + 4-byte count + sorted (key, value) pairs

The format is intentionally simpler than CBOR but shares its property that
there is exactly one encoding for any value, which is what makes it safe to
hash and sign.

The encoder builds each value in a single ``bytearray`` with fused
tag+value struct writes: one ``Struct(">Bq").pack`` emits a tagged
integer and one ``Struct(">BI").pack`` emits a tagged length header, so
every field costs one C call and one buffer append instead of separate
tag/payload concatenations.  A preallocated-buffer ``pack_into`` variant
was benchmarked and lost to this design (the per-field capacity checks
cost more than ``bytearray``'s amortised growth); see EXPERIMENTS.md.
Output is byte-identical to the straightforward append-per-field
encoder; the golden tests in ``tests/test_encoding.py`` pin that
equivalence.
"""

from __future__ import annotations

import struct
from typing import Any

from repro.common.errors import EncodingError

_INT = b"i"
_BYTES = b"b"
_STR = b"s"
_NONE = b"n"
_TRUE = b"t"
_FALSE = b"f"
_LIST = b"l"
_DICT = b"d"

_I64 = struct.Struct(">q")
_U32 = struct.Struct(">I")

# Fused writers: tag byte + value in a single C call.  One ``pack`` per
# field replaces the tag-concat-payload pair of the naive encoder, which
# is where the hot path spends its time (every digest encodes thousands
# of small tagged integers and length headers).
_TI64 = struct.Struct(">Bq")
_THDR = struct.Struct(">BI")

# Tag byte values for the fused writers.
_T_INT = _INT[0]
_T_BYTES = _BYTES[0]
_T_STR = _STR[0]
_T_LIST = _LIST[0]
_T_DICT = _DICT[0]


def encode(value: Any) -> bytes:
    """Deterministically encode ``value`` to bytes.

    Supported types: ``int``, ``bytes``, ``str``, ``bool``, ``None``,
    ``list``/``tuple`` and ``dict`` with string keys.  Raises
    :class:`EncodingError` for anything else.
    """
    buf = bytearray()
    _encode_into(value, buf)
    return bytes(buf)


def encode_into(value: Any, out: bytearray) -> None:
    """Append the canonical encoding of ``value`` to ``out``.

    Zero-copy variant of :func:`encode` for callers that only need the
    encoding transiently (hashing, framing): the bytes never materialise
    as an immutable copy.  ``out`` is usually empty but any prefix is
    preserved.
    """
    _encode_into(value, out)


def _encode_into(
    value: Any,
    out: bytearray,
    _pack_int=_TI64.pack,
    _pack_hdr=_THDR.pack,
) -> None:
    """Append the canonical encoding of ``value`` to ``out``.

    The fused struct writers ride in as default args to skip the global
    lookups on the hot path.
    """
    if value is None:
        out += _NONE
        return
    if value is True or value is False:
        out += _TRUE if value else _FALSE
        return
    if isinstance(value, int):
        try:
            out += _pack_int(_T_INT, value)
        except struct.error as exc:
            raise EncodingError(f"integer out of 64-bit range: {value}") from exc
        return
    if isinstance(value, bytes):
        out += _pack_hdr(_T_BYTES, len(value))
        out += value
        return
    if isinstance(value, str):
        raw = value.encode("utf-8")
        out += _pack_hdr(_T_STR, len(raw))
        out += raw
        return
    if isinstance(value, (list, tuple)):
        out += _pack_hdr(_T_LIST, len(value))
        # Inline the dominant item types (ints, byte strings and the
        # short str tags of digest payloads): block digests encode
        # thousands of flat [int, int, bytes, int] operation records,
        # and recursing per primitive costs more than encoding it.
        # ``type() is`` keeps bool (an int subclass) and bytes/str
        # subclasses on the recursive path, so output is identical.
        for item in value:
            kind = type(item)
            if kind is int:
                try:
                    out += _pack_int(_T_INT, item)
                except struct.error as exc:
                    raise EncodingError(
                        f"integer out of 64-bit range: {item}"
                    ) from exc
            elif kind is bytes:
                out += _pack_hdr(_T_BYTES, len(item))
                out += item
            elif kind is str:
                raw = item.encode("utf-8")
                out += _pack_hdr(_T_STR, len(raw))
                out += raw
            elif kind is list or kind is tuple:
                # One more inline level: a block's operation list is a
                # list of flat [int, int, bytes, int] records.
                out += _pack_hdr(_T_LIST, len(item))
                for sub in item:
                    sub_kind = type(sub)
                    if sub_kind is int:
                        try:
                            out += _pack_int(_T_INT, sub)
                        except struct.error as exc:
                            raise EncodingError(
                                f"integer out of 64-bit range: {sub}"
                            ) from exc
                    elif sub_kind is bytes:
                        out += _pack_hdr(_T_BYTES, len(sub))
                        out += sub
                    elif sub_kind is str:
                        raw = sub.encode("utf-8")
                        out += _pack_hdr(_T_STR, len(raw))
                        out += raw
                    else:
                        _encode_into(sub, out)
            else:
                _encode_into(item, out)
        return
    if isinstance(value, dict):
        out += _pack_hdr(_T_DICT, len(value))
        try:
            keys = sorted(value)
        except TypeError as exc:
            raise EncodingError("dict keys must be sortable strings") from exc
        for key in keys:
            if not isinstance(key, str):
                raise EncodingError(f"dict keys must be str, got {type(key).__name__}")
            raw = key.encode("utf-8")
            out += _pack_hdr(_T_STR, len(raw))
            out += raw
            _encode_into(value[key], out)
        return
    raise EncodingError(f"cannot canonically encode {type(value).__name__}")


def decode(data: bytes) -> Any:
    """Decode bytes produced by :func:`encode`.

    Raises :class:`EncodingError` on malformed or trailing input.
    """
    value, offset = _decode_from(data, 0)
    if offset != len(data):
        raise EncodingError(f"trailing bytes after value ({len(data) - offset} left)")
    return value


def _decode_from(data: bytes, offset: int) -> tuple[Any, int]:
    if offset >= len(data):
        raise EncodingError("truncated input: missing tag")
    tag = data[offset : offset + 1]
    offset += 1
    if tag == _NONE:
        return None, offset
    if tag == _TRUE:
        return True, offset
    if tag == _FALSE:
        return False, offset
    if tag == _INT:
        end = offset + 8
        _check_len(data, end)
        return _I64.unpack_from(data, offset)[0], end
    if tag in (_BYTES, _STR):
        _check_len(data, offset + 4)
        length = _U32.unpack_from(data, offset)[0]
        offset += 4
        end = offset + length
        _check_len(data, end)
        raw = data[offset:end]
        if tag == _STR:
            try:
                return raw.decode("utf-8"), end
            except UnicodeDecodeError as exc:
                raise EncodingError("invalid UTF-8 in string") from exc
        return raw, end
    if tag == _LIST:
        _check_len(data, offset + 4)
        count = _U32.unpack_from(data, offset)[0]
        offset += 4
        items = []
        for _ in range(count):
            item, offset = _decode_from(data, offset)
            items.append(item)
        return items, offset
    if tag == _DICT:
        _check_len(data, offset + 4)
        count = _U32.unpack_from(data, offset)[0]
        offset += 4
        result: dict[str, Any] = {}
        previous_key: str | None = None
        for _ in range(count):
            key, offset = _decode_from(data, offset)
            if not isinstance(key, str):
                raise EncodingError("dict key decoded to non-string")
            if previous_key is not None and key <= previous_key:
                raise EncodingError("dict keys not in canonical (sorted) order")
            previous_key = key
            value, offset = _decode_from(data, offset)
            result[key] = value
        return result, offset
    raise EncodingError(f"unknown tag byte {tag!r}")


def _check_len(data: bytes, end: int) -> None:
    if end > len(data):
        raise EncodingError("truncated input")
