"""Canonical binary encoding for protocol data.

All signed material (blocks, votes, QC payloads) must be encoded the same
way on every replica, otherwise digests and signatures would diverge.  This
module implements a tiny, deterministic, self-describing binary codec:

* integers  -> tag ``i`` + 8-byte big-endian two's complement
* bytes     -> tag ``b`` + 4-byte length + payload
* strings   -> tag ``s`` + 4-byte length + UTF-8 payload
* None      -> tag ``n``
* booleans  -> tag ``t`` / ``f``
* tuples/lists -> tag ``l`` + 4-byte count + encoded items
* dicts     -> tag ``d`` + 4-byte count + sorted (key, value) pairs

The format is intentionally simpler than CBOR but shares its property that
there is exactly one encoding for any value, which is what makes it safe to
hash and sign.
"""

from __future__ import annotations

import struct
from typing import Any

from repro.common.errors import EncodingError

_INT = b"i"
_BYTES = b"b"
_STR = b"s"
_NONE = b"n"
_TRUE = b"t"
_FALSE = b"f"
_LIST = b"l"
_DICT = b"d"

_I64 = struct.Struct(">q")
_U32 = struct.Struct(">I")


def encode(value: Any) -> bytes:
    """Deterministically encode ``value`` to bytes.

    Supported types: ``int``, ``bytes``, ``str``, ``bool``, ``None``,
    ``list``/``tuple`` and ``dict`` with string keys.  Raises
    :class:`EncodingError` for anything else.
    """
    out = bytearray()
    _encode_into(value, out)
    return bytes(out)


def _encode_into(value: Any, out: bytearray) -> None:
    if value is None:
        out += _NONE
    elif value is True:
        out += _TRUE
    elif value is False:
        out += _FALSE
    elif isinstance(value, int):
        out += _INT
        try:
            out += _I64.pack(value)
        except struct.error as exc:
            raise EncodingError(f"integer out of 64-bit range: {value}") from exc
    elif isinstance(value, bytes):
        out += _BYTES
        out += _U32.pack(len(value))
        out += value
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out += _STR
        out += _U32.pack(len(raw))
        out += raw
    elif isinstance(value, (list, tuple)):
        out += _LIST
        out += _U32.pack(len(value))
        # Inline the two dominant item types (ints and byte strings):
        # block digests encode thousands of flat [int, int, bytes, int]
        # operation records, and recursing per primitive costs more than
        # encoding it.  ``type() is`` keeps bool (an int subclass) and
        # bytes subclasses on the recursive path, so output is identical.
        for item in value:
            kind = type(item)
            if kind is int:
                out += _INT
                try:
                    out += _I64.pack(item)
                except struct.error as exc:
                    raise EncodingError(
                        f"integer out of 64-bit range: {item}"
                    ) from exc
            elif kind is bytes:
                out += _BYTES
                out += _U32.pack(len(item))
                out += item
            elif kind is list or kind is tuple:
                # One more inline level: a block's operation list is a
                # list of flat [int, int, bytes, int] records.
                out += _LIST
                out += _U32.pack(len(item))
                for sub in item:
                    sub_kind = type(sub)
                    if sub_kind is int:
                        out += _INT
                        try:
                            out += _I64.pack(sub)
                        except struct.error as exc:
                            raise EncodingError(
                                f"integer out of 64-bit range: {sub}"
                            ) from exc
                    elif sub_kind is bytes:
                        out += _BYTES
                        out += _U32.pack(len(sub))
                        out += sub
                    else:
                        _encode_into(sub, out)
            else:
                _encode_into(item, out)
    elif isinstance(value, dict):
        out += _DICT
        out += _U32.pack(len(value))
        try:
            keys = sorted(value)
        except TypeError as exc:
            raise EncodingError("dict keys must be sortable strings") from exc
        for key in keys:
            if not isinstance(key, str):
                raise EncodingError(f"dict keys must be str, got {type(key).__name__}")
            _encode_into(key, out)
            _encode_into(value[key], out)
    else:
        raise EncodingError(f"cannot canonically encode {type(value).__name__}")


def decode(data: bytes) -> Any:
    """Decode bytes produced by :func:`encode`.

    Raises :class:`EncodingError` on malformed or trailing input.
    """
    value, offset = _decode_from(data, 0)
    if offset != len(data):
        raise EncodingError(f"trailing bytes after value ({len(data) - offset} left)")
    return value


def _decode_from(data: bytes, offset: int) -> tuple[Any, int]:
    if offset >= len(data):
        raise EncodingError("truncated input: missing tag")
    tag = data[offset : offset + 1]
    offset += 1
    if tag == _NONE:
        return None, offset
    if tag == _TRUE:
        return True, offset
    if tag == _FALSE:
        return False, offset
    if tag == _INT:
        end = offset + 8
        _check_len(data, end)
        return _I64.unpack_from(data, offset)[0], end
    if tag in (_BYTES, _STR):
        _check_len(data, offset + 4)
        length = _U32.unpack_from(data, offset)[0]
        offset += 4
        end = offset + length
        _check_len(data, end)
        raw = data[offset:end]
        if tag == _STR:
            try:
                return raw.decode("utf-8"), end
            except UnicodeDecodeError as exc:
                raise EncodingError("invalid UTF-8 in string") from exc
        return raw, end
    if tag == _LIST:
        _check_len(data, offset + 4)
        count = _U32.unpack_from(data, offset)[0]
        offset += 4
        items = []
        for _ in range(count):
            item, offset = _decode_from(data, offset)
            items.append(item)
        return items, offset
    if tag == _DICT:
        _check_len(data, offset + 4)
        count = _U32.unpack_from(data, offset)[0]
        offset += 4
        result: dict[str, Any] = {}
        previous_key: str | None = None
        for _ in range(count):
            key, offset = _decode_from(data, offset)
            if not isinstance(key, str):
                raise EncodingError("dict key decoded to non-string")
            if previous_key is not None and key <= previous_key:
                raise EncodingError("dict keys not in canonical (sorted) order")
            previous_key = key
            value, offset = _decode_from(data, offset)
            result[key] = value
        return result, offset
    raise EncodingError(f"unknown tag byte {tag!r}")


def _check_len(data: bytes, end: int) -> None:
    if end > len(data):
        raise EncodingError("truncated input")
