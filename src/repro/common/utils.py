"""Small shared helpers with no better home."""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence, TypeVar

T = TypeVar("T")


def chunked(items: Sequence[T], size: int) -> Iterator[Sequence[T]]:
    """Yield consecutive slices of ``items`` of at most ``size`` elements.

    >>> [list(c) for c in chunked([1, 2, 3, 4, 5], 2)]
    [[1, 2], [3, 4], [5]]
    """
    if size < 1:
        raise ValueError(f"chunk size must be >= 1, got {size}")
    for start in range(0, len(items), size):
        yield items[start : start + size]


def first(iterable: Iterable[T], default: T | None = None) -> T | None:
    """Return the first element of ``iterable`` or ``default`` if empty."""
    for item in iterable:
        return item
    return default


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; returns 0.0 for an empty sequence."""
    if not values:
        return 0.0
    return sum(values) / len(values)


def percentile(values: Sequence[float], pct: float) -> float:
    """Nearest-rank percentile of ``values`` (``pct`` in [0, 100]).

    Returns 0.0 for an empty sequence.  Uses the nearest-rank definition,
    which is monotone and needs no interpolation.
    """
    if not values:
        return 0.0
    if not 0.0 <= pct <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {pct}")
    ordered = sorted(values)
    if pct == 0.0:
        return ordered[0]
    rank = max(1, int(round(pct / 100.0 * len(ordered) + 0.5)) - 1)
    return ordered[min(rank, len(ordered) - 1)]


def format_bytes(size: float) -> str:
    """Human-readable byte count, e.g. ``format_bytes(2048) == '2.0 KiB'``."""
    units = ["B", "KiB", "MiB", "GiB", "TiB"]
    value = float(size)
    for unit in units:
        if abs(value) < 1024.0 or unit == units[-1]:
            if unit == "B":
                return f"{int(value)} {unit}"
            return f"{value:.1f} {unit}"
        value /= 1024.0
    raise AssertionError("unreachable")
