"""Common substrate: identifiers, errors, configuration, encoding, utilities.

Everything in this package is dependency-free and shared by every other
subsystem (crypto, network, storage, consensus, harness).
"""

from repro.common.errors import (
    ReproError,
    ConfigError,
    CryptoError,
    EncodingError,
    NetworkError,
    ProtocolError,
    StorageError,
)
from repro.common.types import (
    ClientId,
    Height,
    ReplicaId,
    View,
    quorum_size,
    max_faulty,
    replica_set,
)

__all__ = [
    "ClientId",
    "ConfigError",
    "CryptoError",
    "EncodingError",
    "Height",
    "NetworkError",
    "ProtocolError",
    "ReplicaId",
    "ReproError",
    "StorageError",
    "View",
    "max_faulty",
    "quorum_size",
    "replica_set",
]
