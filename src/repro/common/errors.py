"""Exception hierarchy for the whole library.

Every subsystem raises subclasses of :class:`ReproError` so callers can
catch library failures without also swallowing programming errors such as
``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration was supplied."""


class EncodingError(ReproError):
    """A value could not be canonically encoded or decoded."""


class CryptoError(ReproError):
    """A cryptographic operation failed (bad key, bad signature, ...)."""


class InvalidSignature(CryptoError):
    """Signature verification failed."""


class InvalidShare(CryptoError):
    """A partial (threshold) signature share failed verification."""


class NotEnoughShares(CryptoError):
    """Fewer than ``t`` valid shares were supplied to ``tcombine``."""


class NetworkError(ReproError):
    """A transport-level failure (unknown peer, closed channel, ...)."""


class UnknownPeer(NetworkError):
    """A message was addressed to a peer the transport does not know."""


class StorageError(ReproError):
    """A storage-engine failure (corrupt record, closed store, ...)."""


class CorruptRecord(StorageError):
    """A persisted record failed its checksum or framing validation."""


class StoreClosed(StorageError):
    """An operation was attempted on a closed store."""


class ProtocolError(ReproError):
    """A consensus-protocol violation or malformed protocol message."""


class InvalidBlock(ProtocolError):
    """A block failed structural validation."""


class InvalidQC(ProtocolError):
    """A quorum certificate failed validation."""


class InvalidVote(ProtocolError):
    """A vote failed validation (bad signer, wrong view, bad digest...)."""


class SafetyViolation(ProtocolError):
    """An action would violate a safety rule; raised by defensive checks."""
