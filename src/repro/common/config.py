"""Cluster- and experiment-level configuration objects.

A :class:`ClusterConfig` describes the replica membership and protocol
constants shared by every node.  :class:`NetworkProfile` and
:class:`MachineProfile` carry the environment parameters of the paper's
testbed (Section VI) so the simulator can reproduce the evaluation: 40 ms
injected one-way latency, 200 Mbps bandwidth, 150-byte transactions,
LevelDB-style persistence and checkpointing every 5000 blocks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ConfigError
from repro.common.types import ReplicaId, max_faulty, quorum_size, validate_bft_size


@dataclass(frozen=True)
class QuorumConfig:
    """Flexible quorum knobs layered on a :class:`ClusterConfig`.

    ``vote_quorum`` overrides the ``n - f`` threshold used to combine
    votes into QCs.  Values above ``n - f`` trade liveness-under-faults
    for a larger intersection margin; values below ``n - f`` sacrifice
    the paper's safety guarantees and exist so the adversary campaigns
    can study exactly that trade-off.  Bounds enforced: ``f + 1 <=
    vote_quorum <= n``.

    ``learners`` adds that many non-voting replicas *after* the voting
    membership (ids ``n .. n + learners - 1``).  Learners never vote,
    never lead, and commit a block only once ``learner_commit_quorum``
    distinct voting replicas have echoed a valid commit certificate for
    it (default ``f + 1`` — at least one correct witness).
    """

    vote_quorum: int | None = None
    learners: int = 0
    learner_commit_quorum: int | None = None

    def __post_init__(self) -> None:
        if self.vote_quorum is not None and self.vote_quorum < 1:
            raise ConfigError(f"vote_quorum must be >= 1, got {self.vote_quorum}")
        if self.learners < 0:
            raise ConfigError(f"learners cannot be negative, got {self.learners}")
        if self.learner_commit_quorum is not None and self.learner_commit_quorum < 1:
            raise ConfigError(
                f"learner_commit_quorum must be >= 1, got {self.learner_commit_quorum}"
            )


@dataclass(frozen=True)
class ClusterConfig:
    """Static membership and protocol constants for one BFT cluster.

    ``num_replicas`` counts the *voting* membership; learner replicas
    (``quorums.learners``) are appended after it and take no part in
    voting or leader rotation.
    """

    num_replicas: int
    batch_size: int = 400
    checkpoint_interval: int = 5000
    base_timeout: float = 1.0
    timeout_multiplier: float = 1.5
    max_timeout: float = 60.0
    quorums: QuorumConfig | None = None

    def __post_init__(self) -> None:
        validate_bft_size(self.num_replicas, self.f)
        if self.num_replicas < 4:
            raise ConfigError(f"need at least 4 replicas, got {self.num_replicas}")
        if self.batch_size < 1:
            raise ConfigError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.checkpoint_interval < 1:
            raise ConfigError("checkpoint_interval must be >= 1")
        if self.base_timeout <= 0:
            raise ConfigError("base_timeout must be positive")
        if self.timeout_multiplier < 1.0:
            raise ConfigError("timeout_multiplier must be >= 1.0")
        if self.quorums is not None and self.quorums.vote_quorum is not None:
            vq = self.quorums.vote_quorum
            if not self.f + 1 <= vq <= self.num_replicas:
                raise ConfigError(
                    f"vote_quorum must be in [f + 1, n] = "
                    f"[{self.f + 1}, {self.num_replicas}], got {vq}"
                )
        if self.learner_commit_quorum > self.num_replicas:
            raise ConfigError(
                f"learner_commit_quorum {self.learner_commit_quorum} exceeds the "
                f"{self.num_replicas} voting replicas that could ever echo a commit"
            )

    @classmethod
    def for_f(cls, f: int, **kwargs: object) -> "ClusterConfig":
        """Build a config with ``n = 3f + 1`` replicas, as the paper does."""
        if f < 1:
            raise ConfigError(f"f must be >= 1, got {f}")
        return cls(num_replicas=3 * f + 1, **kwargs)  # type: ignore[arg-type]

    @property
    def f(self) -> int:
        """Number of tolerated Byzantine faults."""
        return max_faulty(self.num_replicas)

    @property
    def quorum(self) -> int:
        """QC quorum size: ``n - f`` unless ``quorums.vote_quorum`` overrides."""
        if self.quorums is not None and self.quorums.vote_quorum is not None:
            return self.quorums.vote_quorum
        return quorum_size(self.num_replicas)

    @property
    def learners(self) -> int:
        """Number of non-voting learner replicas appended after the voters."""
        return self.quorums.learners if self.quorums is not None else 0

    @property
    def learner_commit_quorum(self) -> int:
        """Distinct commit echoes a learner needs before committing a block."""
        if self.quorums is not None and self.quorums.learner_commit_quorum is not None:
            return self.quorums.learner_commit_quorum
        return self.f + 1

    @property
    def total_replicas(self) -> int:
        """Voting replicas plus learners — the full process count."""
        return self.num_replicas + self.learners

    @property
    def replica_ids(self) -> list[ReplicaId]:
        return [ReplicaId(i) for i in range(self.num_replicas)]

    @property
    def learner_ids(self) -> list[ReplicaId]:
        return [ReplicaId(i) for i in range(self.num_replicas, self.total_replicas)]

    def leader_of(self, view: int) -> ReplicaId:
        """Round-robin leader schedule, the standard HotStuff rotation."""
        if view < 1:
            raise ConfigError(f"views start at 1, got {view}")
        return ReplicaId((view - 1) % self.num_replicas)


@dataclass(frozen=True)
class NetworkProfile:
    """Network environment parameters (paper Section VI).

    The paper's testbed: servers with a 1 Gbps NIC, traffic shaped to
    200 Mbps per link, and 40 ms injected one-way latency.  The DES
    models exactly that: every message first serialises through its
    sender's NIC (``nic_bps``, shared across all destinations — the term
    that makes a broadcasting leader the bottleneck as ``n`` grows), then
    through the per-link shaper (``bandwidth_bps``), then propagates with
    ``one_way_latency`` plus a small uniform jitter.
    """

    one_way_latency: float = 0.040
    bandwidth_bps: float = 200e6
    nic_bps: float = 1e9
    jitter: float = 0.002
    loss_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.one_way_latency < 0:
            raise ConfigError("latency cannot be negative")
        if self.bandwidth_bps <= 0 or self.nic_bps <= 0:
            raise ConfigError("bandwidths must be positive")
        if not 0.0 <= self.loss_rate < 1.0:
            raise ConfigError("loss_rate must be in [0, 1)")
        if self.jitter < 0:
            raise ConfigError("jitter cannot be negative")

    @classmethod
    def paper_testbed(cls) -> "NetworkProfile":
        """The DSN'22 environment: 40 ms latency, 200 Mbps links, 1 Gbps NIC."""
        return cls(one_way_latency=0.040, bandwidth_bps=200e6, nic_bps=1e9, jitter=0.002)

    @classmethod
    def lan(cls) -> "NetworkProfile":
        """A fast datacenter LAN, useful for protocol-logic experiments."""
        return cls(one_way_latency=0.0005, bandwidth_bps=10e9, nic_bps=40e9, jitter=0.0001)

    def transmission_delay(self, size_bytes: int) -> float:
        """Serialisation delay of a ``size_bytes`` message on one link."""
        return size_bytes * 8.0 / self.bandwidth_bps

    def nic_delay(self, size_bytes: int) -> float:
        """Serialisation delay through the sender's NIC."""
        return size_bytes * 8.0 / self.nic_bps


@dataclass(frozen=True)
class MachineProfile:
    """Per-replica CPU and disk cost model (charged to simulated time).

    Calibrated to a 16-core 2.3 GHz server: ECDSA-like sign/verify costs,
    a per-byte hashing cost, and LevelDB-style write amplification (the
    paper stresses it persists to the database rather than memory).
    """

    sign_cost: float = 55e-6
    verify_cost: float = 160e-6
    share_sign_cost: float = 55e-6
    share_verify_cost: float = 160e-6
    combine_cost_per_share: float = 15e-6
    pairing_cost: float = 1.4e-3
    hash_cost_per_byte: float = 1.2e-9
    db_write_base: float = 90e-6
    db_write_per_byte: float = 4e-9
    checkpoint_cost: float = 30e-3
    exec_cost_per_op: float = 1.0e-6
    cores: int = 16

    def __post_init__(self) -> None:
        for name in (
            "sign_cost",
            "verify_cost",
            "share_sign_cost",
            "share_verify_cost",
            "combine_cost_per_share",
            "pairing_cost",
            "hash_cost_per_byte",
            "db_write_base",
            "db_write_per_byte",
            "checkpoint_cost",
            "exec_cost_per_op",
        ):
            if getattr(self, name) < 0:
                raise ConfigError(f"{name} cannot be negative")
        if self.cores < 1:
            raise ConfigError("cores must be >= 1")

    @classmethod
    def paper_testbed(cls) -> "MachineProfile":
        """16-core 2.3 GHz commodity server used in the DSN'22 evaluation."""
        return cls()

    def db_write_cost(self, size_bytes: int) -> float:
        """Simulated latency of persisting ``size_bytes`` to the KV store."""
        return self.db_write_base + size_bytes * self.db_write_per_byte


@dataclass(frozen=True)
class ExperimentConfig:
    """Bundle of everything one simulated experiment needs."""

    cluster: ClusterConfig
    network: NetworkProfile = field(default_factory=NetworkProfile.paper_testbed)
    machine: MachineProfile = field(default_factory=MachineProfile.paper_testbed)
    request_size: int = 150
    reply_size: int = 150
    seed: int = 0

    def __post_init__(self) -> None:
        if self.request_size < 0 or self.reply_size < 0:
            raise ConfigError("request/reply sizes cannot be negative")
