"""Core identifier types and quorum arithmetic.

The whole library uses plain ``int`` new-types for replica ids, views and
heights so values remain cheap, hashable and trivially serialisable, while
still documenting intent at every call site.
"""

from __future__ import annotations

from typing import NewType

from repro.common.errors import ConfigError

ReplicaId = NewType("ReplicaId", int)
"""Index of a replica in ``range(n)``."""

ClientId = NewType("ClientId", int)
"""Index of a client; disjoint namespace from replica ids."""

View = NewType("View", int)
"""Monotonically increasing view number; views start at 1."""

Height = NewType("Height", int)
"""Block height; the genesis block has height 0."""

GENESIS_VIEW = View(0)
GENESIS_HEIGHT = Height(0)


def max_faulty(n: int) -> int:
    """Return ``f``, the number of Byzantine replicas tolerated by ``n``.

    BFT requires ``n >= 3f + 1``, so ``f = (n - 1) // 3``.
    """
    if n < 1:
        raise ConfigError(f"replica count must be positive, got {n}")
    return (n - 1) // 3


def quorum_size(n: int) -> int:
    """Return the quorum size ``n - f`` used for every QC in the paper."""
    return n - max_faulty(n)


def replica_set(n: int) -> list[ReplicaId]:
    """Return the full list of replica ids for an ``n``-replica system."""
    if n < 4:
        raise ConfigError(f"BFT needs n >= 4 replicas (n = 3f+1, f >= 1); got {n}")
    return [ReplicaId(i) for i in range(n)]


def validate_bft_size(n: int, f: int) -> None:
    """Raise :class:`ConfigError` unless ``n >= 3f + 1``."""
    if f < 0:
        raise ConfigError(f"f must be non-negative, got {f}")
    if n < 3 * f + 1:
        raise ConfigError(f"n={n} cannot tolerate f={f} faults (need n >= {3 * f + 1})")
