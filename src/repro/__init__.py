"""repro — a full Python reproduction of *Marlin: Two-Phase BFT with
Linearity* (Sui, Duan, Zhang — DSN 2022).

Quickstart::

    from repro import ClusterConfig, ExperimentConfig, DESCluster, ClosedLoopClients

    experiment = ExperimentConfig(cluster=ClusterConfig.for_f(1))
    cluster = DESCluster(experiment, protocol="marlin")
    clients = ClosedLoopClients(cluster, num_clients=64)
    cluster.start()
    cluster.sim.schedule(0.01, clients.start)
    cluster.run(until=10.0)
    print(clients.summary())

Packages:

* ``repro.consensus`` — Marlin, HotStuff, and the insecure strawman, all
  sans-io; blocks, QCs, rank rules, view changes.
* ``repro.crypto`` / ``repro.network`` / ``repro.storage`` — the
  substrates (threshold signatures, simulated testbed network, LevelDB
  stand-in).
* ``repro.des`` + ``repro.harness`` — the discrete-event evaluation rig
  that regenerates every figure and table of the paper.
* ``repro.runtime`` — a real asyncio runtime for the same protocol cores.
* ``repro.adversary`` — the Byzantine adversary subsystem: declarative
  behaviours, a named attack-scenario library, a history-based safety
  checker, and the campaign runner behind ``repro adversary``.
* ``repro.api`` — the stable facade: :class:`~repro.api.Scenario` plus
  ``load_point`` / ``throughput_curve`` / ``peak_throughput`` /
  ``traced_run``.  Scripts and notebooks should import from there.
"""

from repro import api
from repro.adversary import AdversaryConfig, SafetyChecker, run_campaign
from repro.api import Scenario
from repro.common.config import (
    ClusterConfig,
    ExperimentConfig,
    MachineProfile,
    NetworkProfile,
)
from repro.consensus.block import Block, Operation, genesis_block
from repro.consensus.hotstuff.replica import HotStuffReplica
from repro.consensus.marlin.replica import MarlinReplica
from repro.consensus.pipeline import PipelineConfig
from repro.consensus.qc import BlockSummary, Phase, QuorumCertificate
from repro.harness.des_runtime import DESCluster
from repro.harness.metrics import RunResult
from repro.harness.workload import ClosedLoopClients
from repro.obs.observer import RunObservability
from repro.runtime.cluster import LocalCluster
from repro.shard import ShardConfig, ShardedCluster

__version__ = "1.0.0"

#: The public contract: every name here must resolve as ``repro.<name>``
#: (enforced by tests/test_public_api.py).
__all__ = [
    "AdversaryConfig",
    "Block",
    "BlockSummary",
    "ClosedLoopClients",
    "ClusterConfig",
    "DESCluster",
    "ExperimentConfig",
    "HotStuffReplica",
    "LocalCluster",
    "MachineProfile",
    "MarlinReplica",
    "NetworkProfile",
    "Operation",
    "Phase",
    "PipelineConfig",
    "QuorumCertificate",
    "RunObservability",
    "RunResult",
    "SafetyChecker",
    "Scenario",
    "ShardConfig",
    "ShardedCluster",
    "api",
    "genesis_block",
    "run_campaign",
    "__version__",
]
