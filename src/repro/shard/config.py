"""Shard topology configuration.

One frozen dataclass carries every sharding knob, mirroring the other
config surfaces (:class:`~repro.common.config.ClusterConfig`,
:class:`~repro.client.config.ClientConfig`,
:class:`~repro.consensus.pipeline.PipelineConfig`) that
:class:`repro.api.Scenario` composes.  The default — one shard, hash
routing, misroute rejection on — reproduces the unsharded runtime
exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.client.router import ROUTER_SCHEMES, ShardRouter
from repro.common.errors import ConfigError


@dataclass(frozen=True)
class ShardConfig:
    """Topology of a multi-group deployment (all fields keyword-safe)."""

    #: Number of independent consensus groups sharing the runtime.
    shards: int = 1
    #: Key→shard scheme: "hash" (salted BLAKE2b, process-stable) or
    #: "modulo" (integer keys mod shards; transparent placement).
    router: str = "hash"
    #: Salt mixed into hash routing; changing it re-partitions the
    #: keyspace without touching anything else.
    router_seed: int = 0
    #: Groups reject commands whose key routes to a different shard
    #: instead of committing them (counted per group, never silent).
    reject_misrouted: bool = True

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ConfigError(f"ShardConfig.shards must be >= 1, got {self.shards}")
        if self.router not in ROUTER_SCHEMES:
            raise ConfigError(
                f"ShardConfig.router must be one of {ROUTER_SCHEMES}, "
                f"got {self.router!r}"
            )

    def make_router(self) -> ShardRouter:
        """The router every party of this topology must share."""
        return ShardRouter(self.shards, scheme=self.router, seed=self.router_seed)
