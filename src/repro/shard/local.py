"""Asyncio counterpart of :class:`~repro.shard.cluster.ShardedCluster`.

G independent :class:`~repro.runtime.cluster.LocalCluster` groups on one
event loop, sharing a single threshold-crypto service (one key setup for
all same-shape groups) while each keeps its own transport, nodes and
ledger.  Commands are routed by client identity through the shared
:class:`~repro.client.router.ShardRouter`; submitting with an explicit
wrong shard raises instead of committing on the wrong group.

Typical use::

    sharded = ShardedLocalCluster(f=1, shard=ShardConfig(shards=2))
    async with sharded:
        await sharded.submit(b"payload", client_id=7)   # routed for you
        await sharded.wait_for_height(1, shard_id=sharded.shard_of(7))
"""

from __future__ import annotations

from repro.client.config import ClientConfig
from repro.client.router import ShardRouter
from repro.client.runtime import LocalClient
from repro.common.errors import ConfigError
from repro.consensus.pipeline import PipelineConfig
from repro.runtime.cluster import LocalCluster
from repro.shard.config import ShardConfig


class ShardedLocalCluster:
    """G LocalCluster groups sharing one event loop and one key setup."""

    def __init__(
        self,
        f: int = 1,
        protocol: str = "marlin",
        shard: ShardConfig | None = None,
        base_timeout: float = 1.0,
        seed: int = 0,
        pipeline: PipelineConfig | None = None,
        client_config: ClientConfig | None = None,
    ) -> None:
        self.shard = shard if shard is not None else ShardConfig()
        self.router: ShardRouter = self.shard.make_router()
        # Group 0 builds the (expensive) threshold keys; the rest reuse them.
        first = LocalCluster(
            f=f,
            protocol=protocol,
            base_timeout=base_timeout,
            seed=seed,
            pipeline=pipeline,
            client_config=client_config,
        )
        self.groups: list[LocalCluster] = [first]
        for shard_id in range(1, self.shard.shards):
            self.groups.append(
                LocalCluster(
                    f=f,
                    protocol=protocol,
                    base_timeout=base_timeout,
                    seed=seed + shard_id,
                    pipeline=pipeline,
                    client_config=client_config,
                    crypto=first.crypto,
                )
            )

    @property
    def shards(self) -> int:
        return self.shard.shards

    # ------------------------------------------------------------- control

    async def start(self) -> None:
        for group in self.groups:
            await group.start()

    async def stop(self) -> None:
        for group in self.groups:
            await group.stop()

    async def __aenter__(self) -> "ShardedLocalCluster":
        await self.start()
        return self

    async def __aexit__(self, *exc: object) -> None:
        await self.stop()

    # ------------------------------------------------------------- routing

    def shard_of(self, client_id: int) -> int:
        """The group a client's commands belong to."""
        return self.router.shard_of_client(client_id)

    def group_for(self, client_id: int) -> LocalCluster:
        return self.groups[self.shard_of(client_id)]

    # ------------------------------------------------------------- clients

    def client(
        self, client_id: int, config: ClientConfig | None = None
    ) -> LocalClient:
        """A full protocol client bound to the group owning ``client_id``."""
        return self.group_for(client_id).client(client_id, config)

    async def submit(
        self, payload: bytes, client_id: int, shard_id: int | None = None
    ) -> int:
        """Submit one operation, routed to the owning group by client id.

        Passing an explicit ``shard_id`` that disagrees with the router
        raises :class:`~repro.common.errors.ConfigError` — a mis-routed
        command is refused, never silently committed elsewhere.
        """
        owner = self.shard_of(client_id)
        if shard_id is not None and shard_id != owner:
            raise ConfigError(
                f"client {client_id} routes to shard {owner}, not {shard_id}; "
                "misrouted commands are rejected"
            )
        return await self.groups[owner].submit(payload, client_id=client_id)

    # ------------------------------------------------------------ queries

    def committed_heights(self) -> list[list[int]]:
        return [group.committed_heights() for group in self.groups]

    async def wait_for_height(
        self, height: int, timeout: float = 30.0, shard_id: int | None = None
    ) -> None:
        """Wait until one group (or every group) reaches ``height``."""
        if shard_id is not None:
            await self.groups[shard_id].wait_for_height(height, timeout=timeout)
            return
        for group in self.groups:
            await group.wait_for_height(height, timeout=timeout)
