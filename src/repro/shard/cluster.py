"""Many independent consensus groups in one discrete-event simulator.

Marlin's linearity makes one group O(n) per block; the scale-out story
("millions of users", LinBFT-style amortization) runs G such groups side
by side and routes every command to exactly one of them by key.
:class:`ShardedCluster` is that deployment shape for the DES runtime:

* **one shared** :class:`~repro.des.simulator.Simulator` advances all
  groups in a single event loop, so a sharded run is one deterministic
  trace, not G loosely-coupled ones;
* **one shared crypto service** — all groups have the same shape
  ``(n, quorum)``, so they pay one key setup instead of G (the
  refactor that makes per-group state cheap to instantiate);
* **per-group everything else** — each :class:`ShardGroup` owns its
  :class:`~repro.network.simnet.SimNetwork` (endpoint ids never collide
  across groups and messages physically cannot cross shards), replicas,
  ledger, :class:`~repro.harness.invariants.CommitAuditor`, optional
  online auditor, and optional
  :class:`~repro.obs.complexity.ComplexityObservatory` tap.

Routing discipline is enforced, not assumed: with
``ShardConfig.reject_misrouted`` (the default) every group screens
inbound client traffic through the shared
:class:`~repro.client.router.ShardRouter` and *rejects* commands whose
key routes elsewhere — counted in :attr:`ShardGroup.misrouted_ops`,
never silently committed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.client.router import ShardRouter
from repro.common.config import ExperimentConfig
from repro.consensus.messages import ClientRequest, ClientRequestBatch
from repro.consensus.pipeline import PipelineConfig
from repro.des.simulator import Simulator
from repro.harness.des_runtime import DESCluster
from repro.network.simnet import shard_net_rng
from repro.obs.complexity import ComplexityObservatory
from repro.obs.observer import RunObservability
from repro.shard.config import ShardConfig


def make_misroute_guard(
    router: ShardRouter, shard_id: int, group: "ShardGroup"
) -> Callable[[int, int, Any], Any]:
    """The misroute filter installed on every replica of one group.

    Client traffic whose routing key maps to a different shard is
    stripped (batches) or dropped (single requests) and counted on
    ``group``; protocol traffic passes untouched.  Shared between the
    serial :class:`ShardedCluster` and the process-parallel engine in
    :mod:`repro.des.parallel` so both enforce identical discipline.
    """

    def guard(replica_id: int, src: int, payload: Any) -> Any:
        if isinstance(payload, ClientRequest):
            if router.shard_of_client(payload.client_id) == shard_id:
                return payload
            group.misrouted_ops += payload.weight
            group.misrouted_messages += 1
            return None
        if isinstance(payload, ClientRequestBatch):
            native = tuple(
                op
                for op in payload.operations
                if router.shard_of_client(op.client_id) == shard_id
            )
            if len(native) == len(payload.operations):
                return payload
            group.misrouted_ops += sum(
                op.weight
                for op in payload.operations
                if router.shard_of_client(op.client_id) != shard_id
            )
            group.misrouted_messages += 1
            if not native:
                return None
            return ClientRequestBatch(operations=native)
        return payload

    return guard


@dataclass
class ShardGroup:
    """One consensus group of a sharded deployment."""

    shard_id: int
    cluster: DESCluster
    #: Per-group online observability (auditor) when the run is audited.
    observability: RunObservability | None = None
    #: Per-group complexity tap when the run observes message complexity.
    observatory: ComplexityObservatory | None = None
    #: Weighted count of client operations this group refused because
    #: their routing key belongs to a different shard.
    misrouted_ops: int = 0
    #: How many inbound messages the guard dropped or rewrote.
    misrouted_messages: int = field(default=0, repr=False)


class ShardedCluster:
    """G independent consensus groups over one shared simulator.

    The constructor mirrors :class:`~repro.harness.des_runtime.DESCluster`
    where the concepts coincide; ``shard`` carries the topology.  With
    ``ShardConfig()`` (one shard) the behaviour — including the event
    trace — matches a lone ``DESCluster`` with a guard installed.

    With G > 1 every group's network draws jitter from its own
    deterministic per-group stream (:func:`shard_net_rng`) instead of the
    shared simulator RNG.  That decouples the groups' event sequences
    from interleaving order, which is what lets the process-parallel
    engine (:mod:`repro.des.parallel`) reproduce this serial run byte
    for byte.
    """

    def __init__(
        self,
        experiment: ExperimentConfig,
        shard: ShardConfig | None = None,
        protocol: str = "marlin",
        crypto_mode: str = "null",
        pipeline: PipelineConfig | None = None,
        audit: bool = False,
        observe_complexity: bool = False,
        metrics: bool = False,
        journey: Any | None = None,
    ) -> None:
        self.experiment = experiment
        self.shard = shard if shard is not None else ShardConfig()
        self.protocol = protocol
        self.router: ShardRouter = self.shard.make_router()
        self.sim = Simulator(seed=experiment.seed)
        cluster = experiment.cluster
        self.journey = journey
        # One key setup for all G same-shape groups.
        self.crypto = DESCluster._make_crypto(
            crypto_mode, cluster.num_replicas, cluster.quorum
        )
        self.groups: list[ShardGroup] = []
        for shard_id in range(self.shard.shards):
            # One RunObservability per group (so metric label spaces and
            # auditors stay group-local), but a single shared journey
            # recorder across all of them — (client, seq) keys are
            # globally unique, and one request's checkpoints must land in
            # one place regardless of which group served it.
            observability = (
                RunObservability(
                    trace=False, metrics=metrics, audit=audit, journey=journey
                )
                if audit or metrics or journey is not None
                else None
            )
            group = ShardGroup(shard_id=shard_id, cluster=None)  # type: ignore[arg-type]
            group.cluster = DESCluster(
                experiment,
                protocol=protocol,
                crypto_mode=crypto_mode,
                observability=observability,
                pipeline=pipeline,
                sim=self.sim,
                crypto=self.crypto,
                inbound_filter=(
                    self._guard(group) if self.shard.reject_misrouted else None
                ),
                net_rng=(
                    shard_net_rng(experiment.seed, shard_id)
                    if self.shard.shards > 1
                    else None
                ),
            )
            group.observability = observability
            if observe_complexity:
                observatory = ComplexityObservatory(num_replicas=cluster.num_replicas)
                observatory.disarm()
                group.cluster.network.add_tap(observatory.tap)
                group.observatory = observatory
            self.groups.append(group)

    # ------------------------------------------------------------- routing

    def _guard(self, group: ShardGroup) -> Callable[[int, int, Any], Any]:
        """See :func:`make_misroute_guard` (shared with the parallel engine)."""
        return make_misroute_guard(self.router, group.shard_id, group)

    @property
    def shards(self) -> int:
        return self.shard.shards

    @property
    def misrouted_rejected(self) -> int:
        """Weighted operations rejected across all groups."""
        return sum(group.misrouted_ops for group in self.groups)

    # ------------------------------------------------------------- control

    def start(self) -> None:
        """Boot every replica of every group at t=0."""
        for group in self.groups:
            group.cluster.start()

    def run(self, until: float) -> None:
        self.sim.run(until=until)

    def run_until(
        self, predicate: Callable[[], bool], deadline: float, step: float = 0.05
    ) -> bool:
        """Advance shared simulated time until ``predicate()`` or ``deadline``."""
        while self.sim.now < deadline:
            if predicate():
                return True
            self.sim.run(until=min(self.sim.now + step, deadline))
        return predicate()

    def crash(self, shard_id: int, replica_id: int) -> None:
        """Crash-stop one replica of one group."""
        self.groups[shard_id].cluster.crash(replica_id)

    def crash_at(self, shard_id: int, replica_id: int, time: float) -> None:
        self.sim.schedule_at(time, lambda: self.crash(shard_id, replica_id))

    # ---------------------------------------------------------- observatory

    def arm_observatories(self) -> None:
        for group in self.groups:
            if group.observatory is not None:
                group.observatory.arm()

    def disarm_observatories(self) -> None:
        for group in self.groups:
            if group.observatory is not None:
                group.observatory.disarm()

    # ------------------------------------------------------------ readouts

    def committed_heights(self) -> list[list[int]]:
        """Per-shard committed heights, one inner list per group."""
        return [group.cluster.committed_heights() for group in self.groups]

    def ops_committed_per_shard(self) -> list[int]:
        return [group.cluster.total_ops_committed() for group in self.groups]

    def total_ops_committed(self) -> int:
        """Aggregate committed operations across all groups."""
        return sum(self.ops_committed_per_shard())

    def assert_safety(self) -> None:
        """Raise if any group committed conflicting blocks."""
        for group in self.groups:
            group.cluster.assert_safety()

    def commit_trace(self) -> list[list[Any]]:
        """Flattened deterministic commit history across all groups.

        ``[[shard, replica_id, height, digest, repr(when)], ...]`` —
        groups in shard order, each group's commits in commit order.
        The shape the determinism tests fingerprint for byte-identity.
        """
        trace: list[list[Any]] = []
        for group in self.groups:
            for row in group.cluster.commit_trace():
                trace.append([group.shard_id, *row])
        return trace

    def metrics_snapshot(self) -> dict[str, Any]:
        """Per-shard metric views plus the cluster-wide aggregate.

        ``shards`` maps each shard id to its group registry's snapshot —
        per-group label spaces never mix, which is what keeps identically
        named series (every group has ``blocks_committed_total``) from
        colliding.  ``cluster`` is the one merged view: every group's
        series imported under an extra ``shard=<gid>`` label, then
        aggregated with ``shard``/``replica`` dropped, so each cluster
        series is exactly the sum of the per-shard ones.
        """
        from repro.obs.metrics import MetricsRegistry

        shards: dict[str, Any] = {}
        combined = MetricsRegistry()
        for group in self.groups:
            observability = group.observability
            if observability is None or not observability.metrics_enabled:
                continue
            registry = observability.registry
            shards[str(group.shard_id)] = registry.snapshot()
            combined.merge_from(registry, shard=group.shard_id)
        return {
            "shards": shards,
            "cluster": combined.aggregate(drop_labels=("shard", "replica")).snapshot(),
        }

    def audit_reports(self) -> list[dict[str, Any]]:
        """One online-audit report per group (empty when not audited)."""
        return [
            group.observability.audit_report()
            for group in self.groups
            if group.observability is not None
        ]

    def audit_violations(self) -> int:
        """Total online-auditor violations across all audited groups."""
        return sum(len(report.get("violations", [])) for report in self.audit_reports())
