"""Multi-group sharding: many consensus groups over one shared runtime.

See :mod:`repro.shard.cluster` for the DES deployment,
:mod:`repro.shard.local` for the asyncio one, and
:mod:`repro.shard.config` for the topology knobs.
"""

from repro.client.router import ShardRouter
from repro.shard.cluster import ShardedCluster, ShardGroup
from repro.shard.config import ShardConfig
from repro.shard.local import ShardedLocalCluster

__all__ = [
    "ShardConfig",
    "ShardRouter",
    "ShardGroup",
    "ShardedCluster",
    "ShardedLocalCluster",
]
