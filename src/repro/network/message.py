"""Wire envelopes and message sizing.

An :class:`Envelope` is what travels on a transport: source, destination,
an opaque payload object, and the payload's wire size in bytes.  The DES
does not serialise payloads (Python objects pass by reference for speed);
instead a :class:`WireSizer` computes the byte size each payload *would*
have on the wire, which feeds the bandwidth model and the communication-
complexity accounting for Table I.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

_envelope_ids = itertools.count()

HEADER_SIZE = 48
"""Fixed per-message overhead: type tag, view, sender, lengths, MAC."""


@dataclass
class Envelope:
    """One message in flight between two endpoints."""

    src: int
    dst: int
    payload: Any
    size: int
    sent_at: float = 0.0
    msg_id: int = field(default_factory=lambda: next(_envelope_ids))

    def __repr__(self) -> str:
        kind = type(self.payload).__name__
        return f"Envelope({self.src}->{self.dst}, {kind}, {self.size}B)"


class WireSizer:
    """Computes wire sizes for payload types.

    Register a sizing function per payload type; unknown types fall back
    to a fixed default.  Consensus messages register themselves in
    :mod:`repro.consensus.messages`.
    """

    def __init__(self, default_size: int = 256) -> None:
        self._default = default_size
        self._sizers: dict[type, Callable[[Any], int]] = {}

    def register(self, payload_type: type, sizer: Callable[[Any], int]) -> None:
        self._sizers[payload_type] = sizer

    def size_of(self, payload: Any) -> int:
        """Wire size of ``payload`` in bytes, including the header.

        Payloads may also expose their own ``wire_size`` attribute or
        method, which takes precedence over registered sizers.
        """
        wire_size = getattr(payload, "wire_size", None)
        if wire_size is not None:
            value = wire_size() if callable(wire_size) else wire_size
            return HEADER_SIZE + int(value)
        sizer = self._sizers.get(type(payload))
        if sizer is not None:
            return HEADER_SIZE + sizer(payload)
        return HEADER_SIZE + self._default
