"""Wire envelopes and message sizing.

An :class:`Envelope` is what travels on a transport: source, destination,
an opaque payload object, and the payload's wire size in bytes.  The DES
does not serialise payloads (Python objects pass by reference for speed);
instead a :class:`WireSizer` computes the byte size each payload *would*
have on the wire, which feeds the bandwidth model and the communication-
complexity accounting for Table I.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable

from repro.obs.log import get_logger

_envelope_ids = itertools.count()

HEADER_SIZE = 48
"""Fixed per-message overhead: type tag, view, sender, lengths, MAC."""

log = get_logger("repro.network.sizer")


class Envelope:
    """One message in flight between two endpoints."""

    __slots__ = ("src", "dst", "payload", "size", "sent_at", "msg_id")

    def __init__(
        self,
        src: int,
        dst: int,
        payload: Any,
        size: int,
        sent_at: float = 0.0,
        msg_id: int | None = None,
    ) -> None:
        self.src = src
        self.dst = dst
        self.payload = payload
        self.size = size
        self.sent_at = sent_at
        self.msg_id = next(_envelope_ids) if msg_id is None else msg_id

    def __repr__(self) -> str:
        kind = type(self.payload).__name__
        return f"Envelope({self.src}->{self.dst}, {kind}, {self.size}B)"


class WireSizer:
    """Computes wire sizes for payload types.

    Register a sizing function per payload type; unknown types fall back
    to a fixed default.  Consensus messages register themselves in
    :mod:`repro.consensus.messages`.

    Sizing is memoized per payload *object*: messages are immutable, and
    the dominant caller is a broadcast that sizes the same payload once
    per destination, so a single-entry identity memo turns ``n - 1`` of
    every ``n`` sizing calls into one attribute compare.  The memo keeps
    a strong reference to the last payload, so an id() can never be
    recycled while its entry is live.

    Default-size fallbacks are counted (and warned about once per type):
    an unregistered payload type silently priced at 256 B would quietly
    skew the bandwidth model, so sizing gaps must be visible.
    """

    def __init__(self, default_size: int = 256) -> None:
        self._default = default_size
        self._sizers: dict[type, Callable[[Any], int]] = {}
        self._last_payload: Any = None
        self._last_size: int = 0
        #: Total payloads priced at the default because no sizer matched.
        self.fallback_count = 0
        #: Per-type fallback counts (type name -> count).
        self.fallback_types: dict[str, int] = {}
        self._fallback_counter: Any = None

    def register(self, payload_type: type, sizer: Callable[[Any], int]) -> None:
        self._sizers[payload_type] = sizer

    def bind_fallback_counter(self, counter: Any) -> None:
        """Mirror fallback counts into a metrics counter (``inc()`` duck)."""
        self._fallback_counter = counter

    def size_of(self, payload: Any) -> int:
        """Wire size of ``payload`` in bytes, including the header.

        Payloads may also expose their own ``wire_size`` attribute or
        method, which takes precedence over registered sizers.
        """
        if payload is self._last_payload:
            return self._last_size
        wire_size = getattr(payload, "wire_size", None)
        if wire_size is not None:
            value = wire_size() if callable(wire_size) else wire_size
            size = HEADER_SIZE + int(value)
        else:
            sizer = self._sizers.get(type(payload))
            if sizer is not None:
                size = HEADER_SIZE + sizer(payload)
            else:
                size = HEADER_SIZE + self._default
                self._note_fallback(payload)
        self._last_payload = payload
        self._last_size = size
        return size

    def _note_fallback(self, payload: Any) -> None:
        self.fallback_count += 1
        name = type(payload).__name__
        seen = self.fallback_types.get(name, 0)
        self.fallback_types[name] = seen + 1
        if self._fallback_counter is not None:
            self._fallback_counter.inc()
        if seen == 0:
            log.warning(
                "no wire sizer registered for %s; using the %d B default "
                "(bandwidth model may be skewed)",
                name,
                self._default,
            )
