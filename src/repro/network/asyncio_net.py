"""Asyncio transports: in-process queues and TCP.

The DES answers "what would the testbed measure"; these transports answer
"does the protocol actually run concurrently".  Both present the same
:class:`~repro.network.transport.Transport` contract so the sans-io
protocol cores are reused unchanged.

* :class:`AsyncioNetwork` — each endpoint gets an ``asyncio.Queue`` and a
  pump task; delivery order between a pair of endpoints is FIFO, across
  pairs it is whatever the event loop does (a useful source of real
  interleavings for integration tests).  Optional delay/loss knobs let
  tests exercise timeouts.
* :class:`TcpNetwork` — length-prefixed frames over real sockets on
  localhost, with payloads pickled (trusted, same-process test context
  only).  Used by the TCP cluster example.
"""

from __future__ import annotations

import asyncio
import pickle
import random
import struct
from typing import Any, Callable

from repro.common.errors import NetworkError, UnknownPeer
from repro.network.message import Envelope, WireSizer
from repro.network.stats import TrafficStats
from repro.network.transport import DeliveryHandler, Transport

_FRAME = struct.Struct(">I")


class AsyncioNetwork(Transport):
    """In-process asyncio transport with optional delay and loss."""

    def __init__(
        self,
        delay: float = 0.0,
        jitter: float = 0.0,
        loss_rate: float = 0.0,
        seed: int = 0,
        metrics: Any | None = None,
    ) -> None:
        if not 0.0 <= loss_rate < 1.0:
            raise NetworkError("loss_rate must be in [0, 1)")
        self._delay = delay
        self._jitter = jitter
        self._loss_rate = loss_rate
        self._rng = random.Random(seed)
        self._handlers: dict[int, DeliveryHandler] = {}
        self._queues: dict[int, asyncio.Queue[tuple[int, Any]]] = {}
        self._pumps: dict[int, asyncio.Task[None]] = {}
        self._closed = False
        # Optional repro.obs.metrics.NetworkMetrics duck, same contract
        # the DES transport takes; sizes come from the shared WireSizer so
        # byte counters agree between the two runtimes.
        self._metrics = metrics
        self._sizer = WireSizer()
        # Same TrafficStats/tap surface the DES transport exposes, so the
        # complexity observatory and per-pair accounting work here too.
        self._stats = TrafficStats()
        self._recording = True
        self._taps: list[Callable[[Envelope], None]] = []

    @property
    def stats(self) -> TrafficStats:
        return self._stats

    def reset_stats(self) -> None:
        self._stats = TrafficStats()

    def set_recording(self, on: bool) -> None:
        """Pause/resume traffic accounting (warm-up exclusion)."""
        self._recording = on

    def add_tap(self, tap: Callable[[Envelope], None]) -> None:
        """Observe every delivered envelope (complexity accounting)."""
        self._taps.append(tap)

    def register(self, endpoint: int, handler: DeliveryHandler) -> None:
        self._handlers[endpoint] = handler
        if endpoint not in self._queues:
            self._queues[endpoint] = asyncio.Queue()
            self._pumps[endpoint] = asyncio.get_event_loop().create_task(
                self._pump(endpoint)
            )

    def send(self, src: int, dst: int, payload: Any) -> None:
        if self._closed:
            return
        queue = self._queues.get(dst)
        if queue is None:
            raise UnknownPeer(f"no endpoint registered for id {dst}")
        size = self._sizer.size_of(payload)
        if self._recording:
            self._stats.record(src, dst, size)
        if self._metrics is not None:
            self._metrics.sent(src, size)
        if self._loss_rate > 0.0 and self._rng.random() < self._loss_rate:
            if self._recording:
                self._stats.dropped += 1
            if self._metrics is not None:
                self._metrics.dropped(src)
            return
        if self._delay > 0.0 or self._jitter > 0.0:
            wait = self._delay + (self._rng.uniform(0, self._jitter) if self._jitter else 0.0)
            loop = asyncio.get_event_loop()
            loop.call_later(wait, queue.put_nowait, (src, payload, size))
        else:
            queue.put_nowait((src, payload, size))

    async def _pump(self, endpoint: int) -> None:
        queue = self._queues[endpoint]
        while True:
            src, payload, size = await queue.get()
            if self._metrics is not None:
                self._metrics.received(endpoint, size)
            if self._taps:
                envelope = Envelope(src, endpoint, payload, size, asyncio.get_event_loop().time())
                for tap in self._taps:
                    tap(envelope)
            handler = self._handlers.get(endpoint)
            if handler is not None:
                handler(src, payload)
            # Yield so long handler chains cannot starve other endpoints.
            await asyncio.sleep(0)

    async def close(self) -> None:
        self._closed = True
        for task in self._pumps.values():
            task.cancel()
        await asyncio.gather(*self._pumps.values(), return_exceptions=True)
        self._pumps.clear()


class TcpNetwork(Transport):
    """Length-prefixed frames over localhost TCP.

    Protocol messages travel in the canonical wire codec
    (:mod:`repro.network.codec`); payload types without a codec fall back
    to pickle (trusted, same-process test context only) — each frame is
    tagged with its encoding.

    Call :meth:`start` to bind every registered endpoint's server, then
    :meth:`connect_all` to dial the full mesh.  ``send`` before the dial
    completes raises :class:`NetworkError`.
    """

    def __init__(self, host: str = "127.0.0.1", base_port: int = 29000) -> None:
        self._host = host
        self._base_port = base_port
        self._handlers: dict[int, DeliveryHandler] = {}
        self._servers: dict[int, asyncio.AbstractServer] = {}
        self._writers: dict[tuple[int, int], asyncio.StreamWriter] = {}
        self._reader_tasks: list[asyncio.Task[None]] = []
        self._started = False

    def port_of(self, endpoint: int) -> int:
        return self._base_port + endpoint

    def register(self, endpoint: int, handler: DeliveryHandler) -> None:
        self._handlers[endpoint] = handler

    async def start(self) -> None:
        """Bind one TCP server per registered endpoint."""
        for endpoint in self._handlers:
            server = await asyncio.start_server(
                lambda r, w, ep=endpoint: self._serve(ep, r, w),
                self._host,
                self.port_of(endpoint),
            )
            self._servers[endpoint] = server
        self._started = True

    async def connect_all(self) -> None:
        """Dial a connection for every ordered pair of endpoints."""
        if not self._started:
            raise NetworkError("start() must run before connect_all()")
        for src in self._handlers:
            for dst in self._handlers:
                if src == dst:
                    continue
                reader, writer = await asyncio.open_connection(self._host, self.port_of(dst))
                # First frame announces who we are.
                hello = b"p" + pickle.dumps(("hello", src))
                writer.write(_FRAME.pack(len(hello)) + hello)
                await writer.drain()
                self._writers[(src, dst)] = writer
                # The dialled socket is write-only; dst reads on its server side.
                _ = reader

    def send(self, src: int, dst: int, payload: Any) -> None:
        if src == dst:
            handler = self._handlers.get(dst)
            if handler is None:
                raise UnknownPeer(f"no endpoint {dst}")
            asyncio.get_event_loop().call_soon(handler, src, payload)
            return
        writer = self._writers.get((src, dst))
        if writer is None:
            raise NetworkError(f"no connection {src}->{dst}; call connect_all() first")
        frame = self._encode_frame(payload)
        writer.write(_FRAME.pack(len(frame)) + frame)

    @staticmethod
    def _encode_frame(payload: Any) -> bytes:
        from repro.network import codec

        if codec.supports(payload):
            return b"c" + codec.encode_message(payload)
        return b"p" + pickle.dumps(("msg", payload))

    @staticmethod
    def _decode_frame(body: bytes) -> tuple[str, Any]:
        from repro.network import codec

        marker, rest = body[:1], body[1:]
        if marker == b"c":
            return "msg", codec.decode_message(rest)
        return pickle.loads(rest)

    async def _serve(self, endpoint: int, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        peer: int | None = None
        try:
            while True:
                header = await reader.readexactly(_FRAME.size)
                (length,) = _FRAME.unpack(header)
                body = await reader.readexactly(length)
                kind, value = self._decode_frame(body)
                if kind == "hello":
                    peer = int(value)
                elif kind == "msg":
                    handler = self._handlers.get(endpoint)
                    if handler is not None and peer is not None:
                        handler(peer, value)
        except (asyncio.IncompleteReadError, ConnectionResetError, asyncio.CancelledError):
            pass
        finally:
            writer.close()

    async def close(self) -> None:
        for writer in self._writers.values():
            writer.close()
        self._writers.clear()
        for server in self._servers.values():
            server.close()
            await server.wait_closed()
        self._servers.clear()
