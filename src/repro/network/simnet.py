"""The discrete-event simulated network.

Models the paper's testbed: every ordered pair of distinct machines is a
link with propagation latency (40 ms injected in the evaluation), limited
bandwidth (200 Mbps) producing serialisation delay and queueing, optional
jitter and loss, and administrative controls (cut links, partition sets of
nodes, heal).  Messages to self deliver after a negligible loopback delay.

Bandwidth is modelled per *egress* interface: a machine with a 200 Mbps
NIC serialises all outgoing messages through one queue, so a leader
broadcasting to ``n-1`` replicas pays ``(n-1) * size * 8 / bw`` of
serialisation — the effect that makes HotStuff-style leaders bandwidth
bound as ``n`` grows, visible in Figure 10g.

The network also keeps running totals of messages and bytes per (src, dst)
pair, which the complexity benchmarks (Table I) read back.

``send`` is the hottest function in the simulator after the event loop
itself, so its state is collapsed: each directed link's flags, shaper
horizon and FIFO floor live in one :class:`LinkState` record (one dict
lookup instead of four), and the network profile's constants are hoisted
to attributes at construction time.

Deliveries are batched per link: messages arriving on the same directed
link at the same instant share one scheduled heap event that drains a
list, instead of one heap push/pop each — a leader broadcast or a hub
burst at one timestamp costs a single sift.  Each drained envelope still
goes through the full per-delivery path (metrics, taps, handler) and is
credited individually to the simulator's event counter, so accounting is
unchanged.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field
from functools import partial
from typing import Any, Callable

from repro.common.config import NetworkProfile
from repro.common.errors import UnknownPeer
from repro.des.simulator import Simulator
from repro.network.message import Envelope, WireSizer
from repro.network.stats import TrafficStats
from repro.network.transport import DeliveryHandler, Transport

__all__ = ["LOOPBACK_DELAY", "LinkState", "SimNetwork", "TrafficStats", "shard_net_rng"]

LOOPBACK_DELAY = 20e-6


def shard_net_rng(seed: int, shard_id: int) -> random.Random:
    """Deterministic per-group network jitter RNG for sharded runs.

    Giving every consensus group its own stream (instead of interleaving
    draws on the shared simulator RNG) makes each group's event sequence
    independent of how the groups are scheduled — the property that lets
    a process-parallel sharded run reproduce the serial run byte for
    byte.  The derivation is pure arithmetic on ``(seed, shard_id)`` so
    serial and parallel engines agree without sharing state.
    """
    return random.Random(zlib.crc32(b"shard-net:%d:%d" % (seed, shard_id)))


@dataclass(slots=True)
class LinkState:
    """Mutable state of one directed link.

    Besides the administrative flags, the record carries the two
    per-link scheduling horizons the bandwidth model updates on every
    send: when the link's shaper frees up and the FIFO arrival floor.
    """

    up: bool = True
    extra_latency: float = 0.0
    #: Absolute time the per-link shaper finishes its current backlog.
    free_at: float = 0.0
    #: Latest arrival handed to this link (TCP-like FIFO delivery floor).
    last_arrival: float = 0.0
    #: Open delivery batch: envelopes sharing one scheduled drain event.
    batch: list[Envelope] | None = field(default=None, repr=False)
    #: Arrival instant of the open batch (valid while ``batch`` is set).
    batch_at: float = -1.0


class SimNetwork(Transport):
    """DES transport implementing the :class:`Transport` contract."""

    def __init__(
        self,
        sim: Simulator,
        profile: NetworkProfile,
        sizer: WireSizer | None = None,
        metrics: Any | None = None,
        rng: random.Random | None = None,
    ) -> None:
        self._sim = sim
        self._profile = profile
        self._sizer = sizer or WireSizer()
        #: Jitter/loss RNG.  Defaults to the simulator-wide stream; a
        #: sharded run passes a per-group stream (see
        #: :func:`shard_net_rng`) so groups decouple deterministically.
        self._rng = rng if rng is not None else sim.rng
        #: Optional repro.obs.metrics.NetworkMetrics duck — send/receive/
        #: drop counters per endpoint, independent of TrafficStats (which
        #: the complexity benchmarks reset around warm-up).
        self._metrics = metrics
        self._handlers: dict[int, DeliveryHandler] = {}
        self._links: dict[tuple[int, int], LinkState] = {}
        self._nic_free_at: dict[int, float] = {}
        self._unshaped: set[int] = set()
        self._taps: list[Callable[[Envelope], None]] = []
        self._stats = TrafficStats()
        self._recording = True
        # Hoisted profile constants: attribute loads beat dataclass
        # property/method calls on the per-send hot path.
        self._latency = profile.one_way_latency
        self._jitter = profile.jitter
        self._loss_rate = profile.loss_rate
        self._nic_bps = profile.nic_bps
        self._bandwidth_bps = profile.bandwidth_bps

    @property
    def stats(self) -> TrafficStats:
        return self._stats

    @property
    def profile(self) -> NetworkProfile:
        return self._profile

    def reset_stats(self) -> None:
        self._stats = TrafficStats()

    def set_recording(self, on: bool) -> None:
        """Pause/resume traffic accounting (warm-up exclusion)."""
        self._recording = on

    def register(self, endpoint: int, handler: DeliveryHandler) -> None:
        self._handlers[endpoint] = handler

    def set_unshaped(self, endpoint: int) -> None:
        """Exempt an endpoint's egress from NIC/link shaping.

        Used for the client hub, which stands for a large population of
        client machines and therefore has no single NIC of its own.
        """
        self._unshaped.add(endpoint)

    def link(self, src: int, dst: int) -> LinkState:
        """Get (creating on demand) the state of the directed link src->dst."""
        key = (src, dst)
        state = self._links.get(key)
        if state is None:
            state = LinkState()
            self._links[key] = state
        return state

    def cut(self, a: int, b: int) -> None:
        """Cut both directions between ``a`` and ``b``."""
        self.link(a, b).up = False
        self.link(b, a).up = False

    def heal(self, a: int, b: int) -> None:
        """Restore both directions between ``a`` and ``b``."""
        self.link(a, b).up = True
        self.link(b, a).up = True

    def partition(self, group_a: list[int], group_b: list[int]) -> None:
        """Cut every link crossing between the two groups."""
        for a in group_a:
            for b in group_b:
                self.cut(a, b)

    def heal_all(self) -> None:
        for state in self._links.values():
            state.up = True

    def send(self, src: int, dst: int, payload: Any) -> None:
        if dst not in self._handlers:
            raise UnknownPeer(f"no endpoint registered for id {dst}")
        sim = self._sim
        now = sim.now
        size = self._sizer.size_of(payload)
        if self._recording:
            self._stats.record(src, dst, size)
        if self._metrics is not None:
            self._metrics.sent(src, size)
        key = (src, dst)
        state = self._links.get(key)
        if state is None:
            state = LinkState()
            self._links[key] = state
        if src == dst:
            envelope = Envelope(src, dst, payload, size, now)
            arrival = now + LOOPBACK_DELAY
            batch = state.batch
            if batch is not None and state.batch_at == arrival:
                batch.append(envelope)
                return
            batch = [envelope]
            state.batch = batch
            state.batch_at = arrival
            sim.schedule(LOOPBACK_DELAY, partial(self._drain, state, batch), "loopback")
            return
        if not state.up:
            if self._recording:
                self._stats.dropped += 1
            if self._metrics is not None:
                self._metrics.dropped(src)
            return
        rng = self._rng
        if self._loss_rate > 0.0 and rng.random() < self._loss_rate:
            if self._recording:
                self._stats.dropped += 1
            if self._metrics is not None:
                self._metrics.dropped(src)
            return
        if src in self._unshaped:
            link_done = now
        else:
            # Stage 1: the sender's NIC, shared across all destinations.
            nic_free = self._nic_free_at.get(src, 0.0)
            nic_start = nic_free if nic_free > now else now
            nic_done = nic_start + size * 8.0 / self._nic_bps
            self._nic_free_at[src] = nic_done
            # Stage 2: the per-link shaper (the testbed's 200 Mbps cap).
            link_start = state.free_at if state.free_at > nic_done else nic_done
            link_done = link_start + size * 8.0 / self._bandwidth_bps
            state.free_at = link_done
        latency = self._latency + state.extra_latency
        if self._jitter > 0.0:
            latency += rng.uniform(0.0, self._jitter)
        arrival = link_done + latency
        # Links are TCP-like: delivery is FIFO per (src, dst) even when
        # jitter would let a small message overtake a large one's tail.
        # Clamping to the floor (instead of nudging past it) lets a burst
        # landing at one instant share a single drain event below.
        if arrival < state.last_arrival:
            arrival = state.last_arrival
        state.last_arrival = arrival
        envelope = Envelope(src, dst, payload, size, now)
        batch = state.batch
        if batch is not None and state.batch_at == arrival:
            # Same link, same arrival instant: ride the already-scheduled
            # drain.  FIFO holds — the batch drains in append order.
            batch.append(envelope)
            return
        batch = [envelope]
        state.batch = batch
        state.batch_at = arrival
        sim.schedule(arrival - now, partial(self._drain, state, batch), "net")

    def add_tap(self, tap: "Callable[[Envelope], None]") -> None:
        """Observe every delivered envelope (complexity accounting)."""
        self._taps.append(tap)

    def _drain(self, state: LinkState, batch: list[Envelope]) -> None:
        if state.batch is batch:
            state.batch = None
        if len(batch) > 1:
            # One heap event stood in for the whole batch; keep
            # events_processed counting deliveries individually.
            self._sim.credit_events(len(batch) - 1)
        for envelope in batch:
            self._deliver(envelope)

    def _deliver(self, envelope: Envelope) -> None:
        if self._metrics is not None:
            self._metrics.received(envelope.dst, envelope.size)
        if self._taps:
            for tap in self._taps:
                tap(envelope)
        handler = self._handlers.get(envelope.dst)
        if handler is not None:
            handler(envelope.src, envelope.payload)
