"""The discrete-event simulated network.

Models the paper's testbed: every ordered pair of distinct machines is a
link with propagation latency (40 ms injected in the evaluation), limited
bandwidth (200 Mbps) producing serialisation delay and queueing, optional
jitter and loss, and administrative controls (cut links, partition sets of
nodes, heal).  Messages to self deliver after a negligible loopback delay.

Bandwidth is modelled per *egress* interface: a machine with a 200 Mbps
NIC serialises all outgoing messages through one queue, so a leader
broadcasting to ``n-1`` replicas pays ``(n-1) * size * 8 / bw`` of
serialisation — the effect that makes HotStuff-style leaders bandwidth
bound as ``n`` grows, visible in Figure 10g.

The network also keeps running totals of messages and bytes per (src, dst)
pair, which the complexity benchmarks (Table I) read back.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.common.config import NetworkProfile
from repro.common.errors import UnknownPeer
from repro.des.simulator import Simulator
from repro.network.message import Envelope, WireSizer
from repro.network.transport import DeliveryHandler, Transport

LOOPBACK_DELAY = 20e-6


@dataclass
class LinkState:
    """Mutable state of one directed link."""

    up: bool = True
    extra_latency: float = 0.0


@dataclass
class TrafficStats:
    """Aggregate counters the benchmarks read."""

    messages: int = 0
    bytes: int = 0
    dropped: int = 0
    per_pair: dict[tuple[int, int], int] = field(default_factory=dict)

    def record(self, src: int, dst: int, size: int) -> None:
        self.messages += 1
        self.bytes += size
        self.per_pair[(src, dst)] = self.per_pair.get((src, dst), 0) + 1


class SimNetwork(Transport):
    """DES transport implementing the :class:`Transport` contract."""

    def __init__(
        self,
        sim: Simulator,
        profile: NetworkProfile,
        sizer: WireSizer | None = None,
        metrics: Any | None = None,
    ) -> None:
        self._sim = sim
        self._profile = profile
        self._sizer = sizer or WireSizer()
        #: Optional repro.obs.metrics.NetworkMetrics duck — send/receive/
        #: drop counters per endpoint, independent of TrafficStats (which
        #: the complexity benchmarks reset around warm-up).
        self._metrics = metrics
        self._handlers: dict[int, DeliveryHandler] = {}
        self._links: dict[tuple[int, int], LinkState] = {}
        self._nic_free_at: dict[int, float] = {}
        self._link_free_at: dict[tuple[int, int], float] = {}
        self._last_arrival: dict[tuple[int, int], float] = {}
        self._unshaped: set[int] = set()
        self._taps: list[Callable[[Envelope], None]] = []
        self._stats = TrafficStats()
        self._recording = True

    @property
    def stats(self) -> TrafficStats:
        return self._stats

    @property
    def profile(self) -> NetworkProfile:
        return self._profile

    def reset_stats(self) -> None:
        self._stats = TrafficStats()

    def set_recording(self, on: bool) -> None:
        """Pause/resume traffic accounting (warm-up exclusion)."""
        self._recording = on

    def register(self, endpoint: int, handler: DeliveryHandler) -> None:
        self._handlers[endpoint] = handler

    def set_unshaped(self, endpoint: int) -> None:
        """Exempt an endpoint's egress from NIC/link shaping.

        Used for the client hub, which stands for a large population of
        client machines and therefore has no single NIC of its own.
        """
        self._unshaped.add(endpoint)

    def link(self, src: int, dst: int) -> LinkState:
        """Get (creating on demand) the state of the directed link src->dst."""
        key = (src, dst)
        state = self._links.get(key)
        if state is None:
            state = LinkState()
            self._links[key] = state
        return state

    def cut(self, a: int, b: int) -> None:
        """Cut both directions between ``a`` and ``b``."""
        self.link(a, b).up = False
        self.link(b, a).up = False

    def heal(self, a: int, b: int) -> None:
        """Restore both directions between ``a`` and ``b``."""
        self.link(a, b).up = True
        self.link(b, a).up = True

    def partition(self, group_a: list[int], group_b: list[int]) -> None:
        """Cut every link crossing between the two groups."""
        for a in group_a:
            for b in group_b:
                self.cut(a, b)

    def heal_all(self) -> None:
        for state in self._links.values():
            state.up = True

    def send(self, src: int, dst: int, payload: Any) -> None:
        if dst not in self._handlers:
            raise UnknownPeer(f"no endpoint registered for id {dst}")
        size = self._sizer.size_of(payload)
        if self._recording:
            self._stats.record(src, dst, size)
        if self._metrics is not None:
            self._metrics.sent(src, size)
        if src == dst:
            envelope = Envelope(src=src, dst=dst, payload=payload, size=size, sent_at=self._sim.now)
            self._sim.schedule(LOOPBACK_DELAY, lambda: self._deliver(envelope), label="loopback")
            return
        state = self.link(src, dst)
        if not state.up:
            if self._recording:
                self._stats.dropped += 1
            if self._metrics is not None:
                self._metrics.dropped(src)
            return
        rng = self._sim.rng
        if self._profile.loss_rate > 0.0 and rng.random() < self._profile.loss_rate:
            if self._recording:
                self._stats.dropped += 1
            if self._metrics is not None:
                self._metrics.dropped(src)
            return
        if src in self._unshaped:
            link_done = self._sim.now
        else:
            # Stage 1: the sender's NIC, shared across all destinations.
            nic_start = max(self._nic_free_at.get(src, 0.0), self._sim.now)
            nic_done = nic_start + self._profile.nic_delay(size)
            self._nic_free_at[src] = nic_done
            # Stage 2: the per-link shaper (the testbed's 200 Mbps cap).
            link_key = (src, dst)
            link_start = max(self._link_free_at.get(link_key, 0.0), nic_done)
            link_done = link_start + self._profile.transmission_delay(size)
            self._link_free_at[link_key] = link_done
        latency = self._profile.one_way_latency + state.extra_latency
        if self._profile.jitter > 0.0:
            latency += rng.uniform(0.0, self._profile.jitter)
        arrival = link_done + latency
        # Links are TCP-like: delivery is FIFO per (src, dst) even when
        # jitter would let a small message overtake a large one's tail.
        link_key = (src, dst)
        floor = self._last_arrival.get(link_key, 0.0)
        arrival = max(arrival, floor + 1e-9)
        self._last_arrival[link_key] = arrival
        envelope = Envelope(src=src, dst=dst, payload=payload, size=size, sent_at=self._sim.now)
        self._sim.schedule_at(arrival, lambda: self._deliver(envelope), label=f"net:{src}->{dst}")

    def add_tap(self, tap: "Callable[[Envelope], None]") -> None:
        """Observe every delivered envelope (complexity accounting)."""
        self._taps.append(tap)

    def _deliver(self, envelope: Envelope) -> None:
        if self._metrics is not None:
            self._metrics.received(envelope.dst, envelope.size)
        for tap in self._taps:
            tap(envelope)
        handler = self._handlers.get(envelope.dst)
        if handler is not None:
            handler(envelope.src, envelope.payload)
