"""Traffic accounting shared by every transport.

:class:`TrafficStats` started life inside the DES transport
(:mod:`repro.network.simnet`); it lives here so the asyncio transport
can keep the same counters and the complexity observatory works on both
runtimes.  ``simnet`` re-exports it for backward compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class TrafficStats:
    """Aggregate counters the benchmarks read.

    ``per_pair`` counts messages per directed (src, dst) pair and
    ``per_pair_bytes`` the wire bytes, so Table I can report both message
    and byte/authenticator complexity per link.
    """

    messages: int = 0
    bytes: int = 0
    dropped: int = 0
    per_pair: dict[tuple[int, int], int] = None  # type: ignore[assignment]
    per_pair_bytes: dict[tuple[int, int], int] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.per_pair is None:
            self.per_pair = {}
        if self.per_pair_bytes is None:
            self.per_pair_bytes = {}

    def record(self, src: int, dst: int, size: int) -> None:
        self.messages += 1
        self.bytes += size
        pair = (src, dst)
        per_pair = self.per_pair
        per_pair[pair] = per_pair.get(pair, 0) + 1
        per_bytes = self.per_pair_bytes
        per_bytes[pair] = per_bytes.get(pair, 0) + size
