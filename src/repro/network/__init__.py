"""Network substrate.

Protocol cores are sans-io: they hand :class:`~repro.network.message.Envelope`
objects to a transport and receive them back via a callback.  Two
transports implement that contract:

* :class:`~repro.network.simnet.SimNetwork` — the discrete-event network
  used for every published figure (latency, bandwidth, jitter, loss,
  partitions, per-link controls);
* :class:`~repro.network.asyncio_net.AsyncioNetwork` — a real concurrent
  transport (in-process queues or TCP) used by the runtime and examples.
"""

from repro.network.message import Envelope, WireSizer
from repro.network.simnet import LinkState, SimNetwork
from repro.network.transport import Transport

__all__ = ["Envelope", "LinkState", "SimNetwork", "Transport", "WireSizer"]
