"""The abstract transport contract shared by DES and asyncio networks."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable

DeliveryHandler = Callable[[int, Any], None]
"""Called as ``handler(src, payload)`` when a message arrives."""


class Transport(ABC):
    """Point-to-point messaging between numbered endpoints.

    Endpoints are integers: replicas use their replica id; clients use ids
    offset above the replica range.  ``send`` is fire-and-forget and never
    blocks; delivery (or loss) is the transport's business.
    """

    @abstractmethod
    def register(self, endpoint: int, handler: DeliveryHandler) -> None:
        """Attach ``handler`` as the inbound-message callback of ``endpoint``."""

    @abstractmethod
    def send(self, src: int, dst: int, payload: Any) -> None:
        """Send ``payload`` from ``src`` to ``dst``; no delivery guarantee."""

    def broadcast(self, src: int, dsts: list[int], payload: Any) -> None:
        """Send ``payload`` to every endpoint in ``dsts`` (including src if listed)."""
        for dst in dsts:
            self.send(src, dst, payload)
