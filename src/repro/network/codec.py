"""Wire codec: canonical binary serialisation of protocol messages.

The DES passes Python objects by reference; real transports need bytes.
This module serialises every protocol message through the deterministic
canonical encoding (:mod:`repro.common.encoding`), giving the TCP
transport a language-independent wire format and the tests a guarantee
that everything a replica sends is actually serialisable.

Each message type gets a string tag; payload fields are converted to
canonical-encodable structures (lists/dicts/ints/bytes).  QC signatures
are a tagged union covering every crypto service's artifact
(threshold signature, partial signature, conventional signature,
multi-signature bundle, null tokens, and the genesis ``None``).

There is deliberately no trace-context field anywhere in this format.
Request-journey tracing (:mod:`repro.obs.journey`) keys on the
``(client_id, sequence)`` pair already present in every operation,
request, and reply, and derives the per-client sample bit from the run
seed — so a traced run and an untraced run produce byte-identical
wire traffic, and the encoding never needs versioning for
observability's sake.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.common.encoding import decode, encode
from repro.common.errors import EncodingError
from repro.consensus.block import Block, Operation
from repro.consensus.crypto_service import NullQuorumToken, NullShare
from repro.consensus.messages import (
    AggregateNewView,
    ClientReply,
    ClientRequest,
    ClientRequestBatch,
    Justify,
    LeaseAck,
    LeaseProbe,
    PhaseMsg,
    PrePrepareMsg,
    Proposal,
    ReadReply,
    ReadRequest,
    ReplyBatch,
    StateTransferRequest,
    StateTransferResponse,
    SyncRequest,
    SyncResponse,
    ViewChangeMsg,
    VoteMsg,
)
from repro.consensus.qc import BlockSummary, Phase, QuorumCertificate
from repro.crypto.multisig import MultiSignature
from repro.crypto.signatures import Signature
from repro.crypto.threshold import PartialSignature, ThresholdSignature

# --------------------------------------------------------------- signatures


def _enc_sig(sig: Any) -> list | None:
    if sig is None:
        return None
    if isinstance(sig, ThresholdSignature):
        return ["tsig", sig.value.to_bytes(32, "big")]
    if isinstance(sig, PartialSignature):
        return ["psig", sig.signer, sig.value.to_bytes(32, "big")]
    if isinstance(sig, Signature):
        return ["sig", sig.data]
    if isinstance(sig, MultiSignature):
        return [
            "msig",
            [[signer, inner.data] for signer, inner in sig.signatures],
            sig.group_size,
        ]
    if isinstance(sig, NullShare):
        return ["nshare", sig.signer, sig.tag]
    if isinstance(sig, NullQuorumToken):
        return ["ntoken", sorted(sig.signers), sig.tag]
    raise EncodingError(f"cannot encode signature type {type(sig).__name__}")


def _dec_sig(data: list | None) -> Any:
    if data is None:
        return None
    kind = data[0]
    if kind == "tsig":
        return ThresholdSignature(int.from_bytes(data[1], "big"))
    if kind == "psig":
        return PartialSignature(signer=data[1], value=int.from_bytes(data[2], "big"))
    if kind == "sig":
        return Signature(data[1])
    if kind == "msig":
        return MultiSignature(
            signatures=tuple((signer, Signature(raw)) for signer, raw in data[1]),
            group_size=data[2],
        )
    if kind == "nshare":
        return NullShare(signer=data[1], tag=data[2])
    if kind == "ntoken":
        return NullQuorumToken(signers=frozenset(data[1]), tag=data[2])
    raise EncodingError(f"unknown signature tag {kind!r}")


# ------------------------------------------------------------------ blocks


def _enc_op(op: Operation) -> list:
    return [op.client_id, op.sequence, op.payload, op.weight]


def _dec_op(data: list) -> Operation:
    return Operation(client_id=data[0], sequence=data[1], payload=data[2], weight=data[3])


def _enc_block(block: Block) -> list:
    return [
        block.parent_link,
        block.parent_view,
        block.view,
        block.height,
        [_enc_op(op) for op in block.operations],
        block.justify_digest,
        block.proposer,
    ]


def _dec_block(data: list) -> Block:
    return Block(
        parent_link=data[0],
        parent_view=data[1],
        view=data[2],
        height=data[3],
        operations=tuple(_dec_op(op) for op in data[4]),
        justify_digest=data[5],
        proposer=data[6],
    )


def _enc_summary(summary: BlockSummary) -> list:
    return summary.encodable()


def _dec_summary(data: list) -> BlockSummary:
    return BlockSummary(
        digest=data[0],
        view=data[1],
        height=data[2],
        parent_view=data[3],
        is_virtual=data[4],
        justify_in_view=data[5],
    )


def _enc_qc(qc: QuorumCertificate) -> list:
    return [qc.phase.value, qc.view, _enc_summary(qc.block), _enc_sig(qc.signature)]


def _dec_qc(data: list) -> QuorumCertificate:
    return QuorumCertificate(
        phase=Phase(data[0]),
        view=data[1],
        block=_dec_summary(data[2]),
        signature=_dec_sig(data[3]),
    )


def _enc_justify(justify: Justify | None) -> list | None:
    if justify is None:
        return None
    return [_enc_qc(justify.qc), _enc_qc(justify.vc) if justify.vc else None]


def _dec_justify(data: list | None) -> Justify | None:
    if data is None:
        return None
    return Justify(qc=_dec_qc(data[0]), vc=_dec_qc(data[1]) if data[1] else None)


# ---------------------------------------------------------------- messages

_ENCODERS: dict[type, tuple[str, Callable[[Any], list]]] = {}
_DECODERS: dict[str, Callable[[list], Any]] = {}


def _register(tag: str, cls: type, enc: Callable[[Any], list], dec: Callable[[list], Any]) -> None:
    _ENCODERS[cls] = (tag, enc)
    _DECODERS[tag] = dec


_register(
    "phase",
    PhaseMsg,
    lambda m: [
        m.phase.value,
        m.view,
        _enc_justify(m.justify),
        _enc_block(m.block) if m.block else None,
    ],
    lambda d: PhaseMsg(
        phase=Phase(d[0]),
        view=d[1],
        justify=_dec_justify(d[2]),
        block=_dec_block(d[3]) if d[3] else None,
    ),
)
_register(
    "vote",
    VoteMsg,
    lambda m: [
        m.phase.value,
        m.view,
        _enc_summary(m.block),
        _enc_sig(m.share),
        _enc_qc(m.locked_qc) if m.locked_qc else None,
    ],
    lambda d: VoteMsg(
        phase=Phase(d[0]),
        view=d[1],
        block=_dec_summary(d[2]),
        share=_dec_sig(d[3]),
        locked_qc=_dec_qc(d[4]) if d[4] else None,
    ),
)
_register(
    "preprepare",
    PrePrepareMsg,
    lambda m: [
        m.view,
        [[_enc_block(p.block), _enc_justify(p.justify)] for p in m.proposals],
        m.shadow,
    ],
    lambda d: PrePrepareMsg(
        view=d[0],
        proposals=tuple(
            Proposal(block=_dec_block(b), justify=_dec_justify(j)) for b, j in d[1]
        ),
        shadow=d[2],
    ),
)
_register(
    "viewchange",
    ViewChangeMsg,
    lambda m: [
        m.view,
        _enc_summary(m.last_voted) if m.last_voted else None,
        _enc_justify(m.justify),
        _enc_sig(m.share),
    ],
    lambda d: ViewChangeMsg(
        view=d[0],
        last_voted=_dec_summary(d[1]) if d[1] else None,
        justify=_dec_justify(d[2]),
        share=_dec_sig(d[3]),
    ),
)


def _enc_anv(m: AggregateNewView) -> list:
    vc_tag, vc_enc = _ENCODERS[ViewChangeMsg]
    return [
        m.view,
        _enc_block(m.block),
        _enc_justify(m.justify),
        [[src, vc_enc(proof)] for src, proof in m.proofs],
    ]


def _dec_anv(d: list) -> AggregateNewView:
    dec_vc = _DECODERS["viewchange"]
    return AggregateNewView(
        view=d[0],
        block=_dec_block(d[1]),
        justify=_dec_justify(d[2]),
        proofs=tuple((src, dec_vc(raw)) for src, raw in d[3]),
    )


_register("aggnewview", AggregateNewView, _enc_anv, _dec_anv)
_register(
    "syncreq",
    SyncRequest,
    lambda m: [list(m.digests)],
    lambda d: SyncRequest(digests=tuple(d[0])),
)
_register(
    "syncresp",
    SyncResponse,
    lambda m: [
        [_enc_block(b) for b in m.blocks],
        [[v, p] for v, p in m.resolutions],
    ],
    lambda d: SyncResponse(
        blocks=tuple(_dec_block(b) for b in d[0]),
        resolutions=tuple((v, p) for v, p in d[1]),
    ),
)
_register(
    "streq",
    StateTransferRequest,
    lambda m: [m.have_height],
    lambda d: StateTransferRequest(have_height=d[0]),
)
_register(
    "stresp",
    StateTransferResponse,
    lambda m: [
        m.committed_height,
        _enc_block(m.head) if m.head else None,
        [_enc_block(b) for b in m.recent_blocks],
        [[k, v] for k, v in m.app_entries],
    ],
    lambda d: StateTransferResponse(
        committed_height=d[0],
        head=_dec_block(d[1]) if d[1] else None,
        recent_blocks=tuple(_dec_block(b) for b in d[2]),
        app_entries=tuple((k, v) for k, v in d[3]),
    ),
)
_register(
    "clientreq",
    ClientRequest,
    lambda m: [m.client_id, m.sequence, m.payload, m.weight],
    lambda d: ClientRequest(
        client_id=d[0], sequence=d[1], payload=d[2], weight=d[3]
    ),
)
_register(
    "clientreqbatch",
    ClientRequestBatch,
    lambda m: [[_enc_op(op) for op in m.operations]],
    lambda d: ClientRequestBatch(operations=tuple(_dec_op(op) for op in d[0])),
)
_register(
    "clientreply",
    ClientReply,
    lambda m: [
        m.client_id, m.sequence, m.replica, m.result,
        m.result_digest, m.view, m.weight, m.reply_size,
    ],
    lambda d: ClientReply(
        client_id=d[0],
        sequence=d[1],
        replica=d[2],
        result=d[3],
        result_digest=d[4],
        view=d[5],
        weight=d[6],
        reply_size=d[7],
    ),
)
_register(
    "replybatch",
    ReplyBatch,
    lambda m: [
        m.replica, m.block_digest, [[c, s] for c, s in m.op_keys],
        m.num_ops, m.reply_size, list(m.result_digests), m.view,
    ],
    lambda d: ReplyBatch(
        replica=d[0],
        block_digest=d[1],
        op_keys=tuple((c, s) for c, s in d[2]),
        num_ops=d[3],
        reply_size=d[4],
        result_digests=tuple(d[5]),
        view=d[6],
    ),
)
_register(
    "readreq",
    ReadRequest,
    lambda m: [m.client_id, m.sequence, m.key, m.weight],
    lambda d: ReadRequest(client_id=d[0], sequence=d[1], key=d[2], weight=d[3]),
)
_register(
    "readreply",
    ReadReply,
    lambda m: [m.client_id, m.sequence, m.replica, m.view, m.value, m.ok, m.weight],
    lambda d: ReadReply(
        client_id=d[0],
        sequence=d[1],
        replica=d[2],
        view=d[3],
        value=d[4],
        ok=d[5],
        weight=d[6],
    ),
)
_register(
    "leaseprobe",
    LeaseProbe,
    lambda m: [m.leader, m.view, m.nonce],
    lambda d: LeaseProbe(leader=d[0], view=d[1], nonce=d[2]),
)
_register(
    "leaseack",
    LeaseAck,
    lambda m: [m.replica, m.view, m.nonce],
    lambda d: LeaseAck(replica=d[0], view=d[1], nonce=d[2]),
)


# ------------------------------------------------- public object helpers
# (used by the runtime's durable-state persistence)


def encode_block(block: Block) -> bytes:
    return encode(_enc_block(block))


def decode_block(data: bytes) -> Block:
    return _dec_block(decode(data))


def encode_qc(qc: QuorumCertificate | None) -> bytes:
    return encode(_enc_qc(qc) if qc is not None else None)


def decode_qc(data: bytes) -> QuorumCertificate | None:
    raw = decode(data)
    return _dec_qc(raw) if raw is not None else None


def encode_justify(justify: Justify | None) -> bytes:
    return encode(_enc_justify(justify))


def decode_justify(data: bytes) -> Justify | None:
    return _dec_justify(decode(data))


def encode_summary(summary: BlockSummary) -> bytes:
    return encode(_enc_summary(summary))


def decode_summary(data: bytes) -> BlockSummary:
    return _dec_summary(decode(data))


def supports(payload: Any) -> bool:
    """Can :func:`encode_message` handle this payload?"""
    return type(payload) in _ENCODERS


def encode_message(payload: Any) -> bytes:
    """Serialise a protocol message to canonical bytes.

    Raises :class:`EncodingError` for unsupported types.
    """
    entry = _ENCODERS.get(type(payload))
    if entry is None:
        raise EncodingError(f"no codec for {type(payload).__name__}")
    tag, enc = entry
    return encode([tag, enc(payload)])


def decode_message(data: bytes) -> Any:
    """Inverse of :func:`encode_message`."""
    tag, body = decode(data)
    dec = _DECODERS.get(tag)
    if dec is None:
        raise EncodingError(f"unknown message tag {tag!r}")
    return dec(body)
