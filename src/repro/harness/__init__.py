"""Experiment harness: DES clusters, workloads, metrics, scenarios.

This package turns the protocol library into the paper's evaluation:

* :mod:`repro.harness.des_runtime` — wire replicas into the discrete-event
  simulator (network, CPU model, timers, crash injection);
* :mod:`repro.harness.workload` — closed-loop (Section VI) and open-loop
  (Poisson) client populations, including no-op workloads;
* :mod:`repro.harness.metrics` — latency recorders, throughput windows;
* :mod:`repro.harness.invariants` — cross-replica safety auditing;
* :mod:`repro.harness.scenarios` — canned experiments, one per figure;
* :mod:`repro.harness.analytical` — the Table I complexity model;
* :mod:`repro.harness.failures` — crash/partition/Byzantine injection and
  the random-adversity fuzzer;
* :mod:`repro.harness.explorer` — adversarial message-interleaving hunts;
* :mod:`repro.harness.timeline` — structured protocol event traces;
* :mod:`repro.harness.results` — result persistence and regression diffs;
* :mod:`repro.harness.report` — paper-vs-measured table formatting.
"""

from repro.harness.des_runtime import DESCluster
from repro.harness.explorer import ScheduleExplorer, explore
from repro.harness.invariants import CommitAuditor
from repro.harness.metrics import LatencyRecorder, ThroughputMeter
from repro.harness.results import ResultStore
from repro.harness.timeline import Timeline
from repro.harness.workload import ClosedLoopClients, OpenLoopClients

__all__ = [
    "ClosedLoopClients",
    "CommitAuditor",
    "DESCluster",
    "LatencyRecorder",
    "OpenLoopClients",
    "ResultStore",
    "ScheduleExplorer",
    "ThroughputMeter",
    "Timeline",
    "explore",
]
