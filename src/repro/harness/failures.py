"""Failure and adversary injection for DES experiments.

Crash faults are built into :class:`~repro.harness.des_runtime.DESCluster`
(``crash_at``).  This module adds *Byzantine* behaviours by interposing on
a replica's outbound traffic — the replica still runs correct code, but
its messages are dropped, delayed, mutated or equivocated on the wire,
which is exactly the power the BFT adversary has over a compromised node
(we never need the compromised node to be "cleverly" malicious; the test
suites construct targeted attacks by hand where needed).

Strategies:

* :class:`SilentAfter` — stop sending anything after a set time (a crash
  the failure detector cannot distinguish from slowness);
* :class:`VoteWithholder` — suppress all votes (a liveness attack: the
  quorum must be reachable without this replica);
* :class:`Equivocator` — as leader, send *different* blocks to different
  halves of the cluster at the same height (the classic safety attack —
  the auditor must never trip);
* :class:`Delayer` — hold every outbound message for a fixed time;
* :class:`QCHider` — strip the justify from VIEW-CHANGE messages down to
  the genesis QC, hiding this replica's knowledge (Fig. 2's ``p4``);
* :class:`ReplyForger` — lie to clients: corrupt the result and result
  digest of every outbound client reply (the attack reply certificates
  exist to defeat — f forgers can never assemble f+1 matching replies);
* :class:`GrayFailure` — probabilistically drop or delay messages (the
  "limping but not dead" node of gray-failure studies);
* :class:`SilenceWindows` — go dark over scheduled intervals, modelling
  crash–recover churn without the permanence of ``crash_at``;
* :class:`VCDelayer` — delay only VIEW-CHANGE messages (the targeted lag
  the forking attack uses to control whose snapshot a new leader sees);
* :class:`ComposedStrategy` — chain several strategies on one replica.

Randomised strategies draw from **per-strategy seeded streams** via
:func:`strategy_rng`, so one strategy's draws never perturb another's and
a whole adversarial run replays bit-identically from its seed.

Also here: :func:`fuzz_schedule`, a seeded random-adversity runner used
by the fuzz tests — random crashes, partitions and heals over a run, with
safety asserted throughout and progress asserted whenever the surviving
configuration permits it.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.common.config import ClusterConfig, ExperimentConfig
from repro.consensus.messages import PhaseMsg, ViewChangeMsg, VoteMsg
from repro.consensus.qc import Phase

Send = Callable[[int, Any], None]


def strategy_rng(seed: int, kind: str, replica: int) -> random.Random:
    """A private RNG stream for one strategy instance.

    The stream is keyed on ``(seed, kind, replica)`` through a CRC so
    that (a) two strategies in the same run never share a stream — one
    drawing more numbers cannot shift what the other sees — and (b) the
    same strategy replays identically across runs, processes and worker
    fan-outs.  This is what makes adversarial campaigns cacheable and
    byte-comparable across ``--jobs`` settings.
    """
    return random.Random(zlib.crc32(f"adv:{seed}:{kind}:{replica}".encode()))


class Strategy:
    """Base class: decide what actually goes on the wire."""

    def outbound(self, now: float, dst: int, payload: Any, send: Send) -> None:
        send(dst, payload)


class SilentAfter(Strategy):
    def __init__(self, after: float) -> None:
        self.after = after

    def outbound(self, now: float, dst: int, payload: Any, send: Send) -> None:
        if now < self.after:
            send(dst, payload)


class VoteWithholder(Strategy):
    def outbound(self, now: float, dst: int, payload: Any, send: Send) -> None:
        if not isinstance(payload, VoteMsg):
            send(dst, payload)


class Delayer(Strategy):
    """Hold every outbound message for ``delay`` (plus optional jitter).

    With ``jitter > 0`` each message is held an extra ``U(0, jitter)``
    drawn from ``rng`` — pass a :func:`strategy_rng` stream so the noise
    is private to this strategy and replays deterministically.  The
    default (``jitter=0``) keeps the historical fixed-delay behaviour.
    """

    def __init__(
        self,
        cluster: "Any",
        delay: float,
        jitter: float = 0.0,
        rng: random.Random | None = None,
    ) -> None:
        self.cluster = cluster
        self.delay = delay
        self.jitter = jitter
        self.rng = rng

    def outbound(self, now: float, dst: int, payload: Any, send: Send) -> None:
        delay = self.delay
        if self.jitter > 0.0 and self.rng is not None:
            delay += self.rng.uniform(0.0, self.jitter)
        self.cluster.sim.schedule(delay, lambda: send(dst, payload))


class Equivocator(Strategy):
    """Send a conflicting sibling block to the upper half of the cluster."""

    def __init__(self, num_replicas: int) -> None:
        self.num_replicas = num_replicas

    def outbound(self, now: float, dst: int, payload: Any, send: Send) -> None:
        if (
            isinstance(payload, PhaseMsg)
            and payload.phase == Phase.PREPARE
            and payload.block is not None
            and dst >= self.num_replicas // 2
        ):
            from dataclasses import replace

            sibling = replace(payload.block, proposer=payload.block.proposer + 100)
            send(dst, PhaseMsg(phase=payload.phase, view=payload.view, justify=payload.justify, block=sibling))
        else:
            send(dst, payload)


class QCHider(Strategy):
    """Claim ignorance in view changes: ship the genesis QC as justify."""

    def __init__(self, genesis_justify: Any) -> None:
        self.genesis_justify = genesis_justify

    def outbound(self, now: float, dst: int, payload: Any, send: Send) -> None:
        if isinstance(payload, ViewChangeMsg):
            send(
                dst,
                ViewChangeMsg(
                    view=payload.view,
                    last_voted=payload.last_voted,
                    justify=self.genesis_justify,
                    share=payload.share,
                ),
            )
        else:
            send(dst, payload)


class ReplyForger(Strategy):
    """Forge client replies: corrupt the result and its digest.

    Models a compromised replica lying to clients about execution
    outcomes.  The forged digest is deterministic (bitwise complement)
    so colluding forgers *agree with each other* — the strongest version
    of the attack: with at most ``f`` forgers there are still only ``f``
    matching forged replies, one short of a certificate, so a
    :class:`~repro.client.ReplyCollector` must never certify one.
    """

    def outbound(self, now: float, dst: int, payload: Any, send: Send) -> None:
        from dataclasses import replace

        from repro.consensus.messages import ClientReply

        if isinstance(payload, ClientReply):
            forged_digest = bytes(b ^ 0xFF for b in payload.result_digest) or b"\xff" * 32
            send(
                dst,
                replace(payload, result=b"forged", result_digest=forged_digest),
            )
        else:
            send(dst, payload)


class GrayFailure(Strategy):
    """A limping node: drop some messages, slow others, deliver the rest.

    Gray failures (partial, probabilistic degradation) are the faults
    failure detectors handle worst: the node is never *down*, so timeouts
    fire erratically rather than cleanly.  ``drop_p`` and ``slow_p`` are
    evaluated per outbound message from this strategy's private ``rng``
    stream; a slowed message is held for ``U(0, slow_delay)``.
    """

    def __init__(
        self,
        cluster: "Any",
        rng: random.Random,
        drop_p: float = 0.1,
        slow_p: float = 0.3,
        slow_delay: float = 0.2,
    ) -> None:
        self.cluster = cluster
        self.rng = rng
        self.drop_p = drop_p
        self.slow_p = slow_p
        self.slow_delay = slow_delay

    def outbound(self, now: float, dst: int, payload: Any, send: Send) -> None:
        roll = self.rng.random()
        if roll < self.drop_p:
            return
        if roll < self.drop_p + self.slow_p:
            delay = self.rng.uniform(0.0, self.slow_delay)
            self.cluster.sim.schedule(delay, lambda: send(dst, payload))
            return
        send(dst, payload)


class SilenceWindows(Strategy):
    """Go dark during scheduled intervals (crash–recover churn).

    ``crash_at`` is permanent; real churn is not.  A replica under this
    strategy keeps *running* (its timers fire, its state advances) but
    nothing it sends during a window reaches the wire — exactly what a
    node rebooting or wedged behind a full NIC queue looks like to the
    rest of the cluster.  Windows are ``(start, end)`` pairs in sim time.
    """

    def __init__(self, windows: tuple[tuple[float, float], ...]) -> None:
        self.windows = tuple(windows)

    def outbound(self, now: float, dst: int, payload: Any, send: Send) -> None:
        for start, end in self.windows:
            if start <= now < end:
                return
        send(dst, payload)


class VCDelayer(Strategy):
    """Delay only VIEW-CHANGE messages; everything else flows normally.

    The forking attack's accomplice: lagging one replica's view-change
    report controls *whose* snapshot a new leader assembles its quorum
    from, without disturbing the replica's votes or proposals.
    """

    def __init__(self, cluster: "Any", delay: float) -> None:
        self.cluster = cluster
        self.delay = delay

    def outbound(self, now: float, dst: int, payload: Any, send: Send) -> None:
        if isinstance(payload, ViewChangeMsg):
            self.cluster.sim.schedule(self.delay, lambda: send(dst, payload))
        else:
            send(dst, payload)


class ComposedStrategy(Strategy):
    """Chain strategies: the first sees the raw send, wrapped in order.

    ``ComposedStrategy([a, b])`` runs ``a`` first; whatever ``a`` decides
    to send is then subject to ``b``.  This is how one replica plays
    several roles at once (e.g. withhold votes *and* hide its QC).
    """

    def __init__(self, strategies: list[Strategy]) -> None:
        self.strategies = list(strategies)

    def outbound(self, now: float, dst: int, payload: Any, send: Send) -> None:
        chain = send
        for strategy in reversed(self.strategies[1:]):
            chain = self._wrap(now, strategy, chain)
        first = self.strategies[0] if self.strategies else None
        if first is None:
            send(dst, payload)
        else:
            first.outbound(now, dst, payload, chain)

    @staticmethod
    def _wrap(now: float, strategy: Strategy, send: Send) -> Send:
        def chained(dst: int, payload: Any) -> None:
            strategy.outbound(now, dst, payload, send)

        return chained


def make_byzantine(cluster: "Any", replica_id: int, strategy: Strategy) -> None:
    """Interpose ``strategy`` on every outbound message of ``replica_id``."""
    ctx = cluster.replicas[replica_id].ctx
    original_send = ctx.send

    def intercepted(dst: int, payload: Any) -> None:
        strategy.outbound(cluster.sim.now, dst, payload, original_send)

    ctx.send = intercepted  # type: ignore[method-assign]


# ---------------------------------------------------------------------------
# Random-adversity fuzzing


@dataclass
class FuzzReport:
    """Outcome of one fuzzed run."""

    seed: int
    protocol: str
    events: list[str] = field(default_factory=list)
    committed_heights: list[int] = field(default_factory=list)
    max_view: int = 0
    ops_committed: int = 0
    safety_ok: bool = False


def fuzz_schedule(
    seed: int,
    protocol: str = "marlin",
    f: int = 1,
    sim_time: float = 30.0,
    crypto_mode: str = "null",
) -> FuzzReport:
    """Run one randomly-adversarial schedule and audit safety.

    The adversary (seeded RNG) may: crash up to ``f`` replicas, partition
    and heal the network, and add transient link latency.  Safety is
    asserted continuously by the commit auditor; the report carries what
    happened so callers can decide which liveness expectations apply.
    """
    from repro.harness.des_runtime import DESCluster
    from repro.harness.workload import ClosedLoopClients

    rng = random.Random(seed)
    experiment = ExperimentConfig(
        cluster=ClusterConfig.for_f(f, batch_size=500, base_timeout=0.5),
        seed=seed,
    )
    cluster = DESCluster(experiment, protocol=protocol, crypto_mode=crypto_mode)
    pool = ClosedLoopClients(cluster, num_clients=24, token_weight=1, target="all")
    cluster.start()
    cluster.sim.schedule(0.01, pool.start)

    report = FuzzReport(seed=seed, protocol=protocol)
    n = experiment.cluster.num_replicas
    crashes = rng.sample(range(n), k=rng.randint(0, f))
    for victim in crashes:
        when = rng.uniform(1.0, sim_time / 2)
        cluster.crash_at(victim, when)
        report.events.append(f"crash r{victim} @ {when:.2f}s")

    for _ in range(rng.randint(0, 3)):
        start = rng.uniform(1.0, sim_time * 0.6)
        duration = rng.uniform(0.5, 3.0)
        group = rng.sample(range(n), k=rng.randint(1, max(1, f)))
        rest = [i for i in range(n) if i not in group]

        def cut(group=list(group), rest=list(rest)) -> None:
            cluster.network.partition(group, rest)

        cluster.sim.schedule_at(start, cut)
        cluster.sim.schedule_at(start + duration, cluster.network.heal_all)
        report.events.append(f"partition {group} for {duration:.2f}s @ {start:.2f}s")

    cluster.run(until=sim_time)
    cluster.assert_safety()
    report.safety_ok = True
    report.committed_heights = cluster.committed_heights()
    report.max_view = max(r.cview for r in cluster.replicas)
    report.ops_committed = cluster.total_ops_committed()
    return report
