"""Canned experiments, one per figure in the paper's evaluation.

Each function builds a fresh :class:`~repro.harness.des_runtime.DESCluster`
with the paper's testbed parameters (40 ms injected latency, 200 Mbps
shaped links, 1 Gbps NICs, 16-core machines, LevelDB-style persistence),
runs the workload, audits safety, and returns plain data the benchmark
modules format into paper-versus-measured tables.

Crypto note: throughput scenarios run the ``null`` crypto service (exact
quorum logic, no arithmetic) with the **threshold** cost model charging
simulated CPU — the protocols behave identically, the simulation just
avoids Python big-int work.  Logic and adversarial tests elsewhere use
the real threshold scheme.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

from repro.common.config import ClusterConfig, ExperimentConfig
from repro.common.errors import ConfigError
from repro.harness.des_runtime import DESCluster
from repro.harness.metrics import RunResult
from repro.harness.workload import ClosedLoopClients
from repro.obs.complexity import CostCell

DEFAULT_MAX_BATCH = 30000
"""Natural batching cap (weighted ops per block).

Large enough that bandwidth, not the cap, bounds saturation throughput,
yet small enough that a saturated leader keeps several blocks in flight
rather than sweeping the whole client population into one lockstep block.
"""

LATENCY_CAP = 1.0
"""Peak-throughput methodology: the paper's Fig. 10a-f curves end near
1000 ms; "peak" is the throughput reached at this latency."""


def _experiment(f: int, seed: int = 0, batch: int | None = None, **cluster_kwargs) -> ExperimentConfig:
    cluster = ClusterConfig.for_f(
        f, batch_size=batch if batch is not None else DEFAULT_MAX_BATCH, **cluster_kwargs
    )
    return ExperimentConfig(cluster=cluster, seed=seed)


def _token_weight(clients: int, max_tokens: int = 384) -> int:
    return max(1, clients // max_tokens)


# ---------------------------------------------------------------------------
# Fig. 10a-10f: throughput vs latency


def _load_point(
    protocol: str,
    f: int,
    clients: int,
    sim_time: float = 22.0,
    warmup: float = 7.0,
    request_size: int = 150,
    reply_size: int = 150,
    seed: int = 1,
    observability=None,
    pipeline=None,
    crypto: str = "null",
    client=None,
    cluster=None,
    shard=None,
    des_jobs: int = 1,
    adversary=None,
) -> RunResult:
    """One closed-loop load point for one protocol at one cluster size.

    Failure-free methodology: the view timer is set far above any block
    interval so the stable leader is never deposed mid-measurement (the
    paper's throughput experiments are failure-free; view changes are
    measured separately in Fig. 10i/10j).

    Pass a :class:`~repro.obs.observer.RunObservability` to collect
    per-replica metrics and per-phase latency histograms; the result's
    ``phase_latency`` field is then populated from them.  Pass a
    :class:`~repro.client.ClientConfig` with ``mode="real"`` to drive
    the load through genuine protocol clients instead of the hub model.
    Pass a :class:`~repro.common.config.ClusterConfig` as ``cluster`` to
    override the derived per-group shape, and a
    :class:`~repro.shard.ShardConfig` as ``shard`` to run G groups and
    report aggregate (plus per-shard) throughput.
    """
    result, _ = _load_point_ex(
        protocol,
        f,
        clients,
        sim_time=sim_time,
        warmup=warmup,
        request_size=request_size,
        reply_size=reply_size,
        seed=seed,
        observability=observability,
        pipeline=pipeline,
        crypto=crypto,
        client=client,
        cluster=cluster,
        shard=shard,
        des_jobs=des_jobs,
        adversary=adversary,
    )
    return result


def _load_point_ex(
    protocol: str,
    f: int,
    clients: int,
    sim_time: float = 22.0,
    warmup: float = 7.0,
    request_size: int = 150,
    reply_size: int = 150,
    seed: int = 1,
    observability=None,
    pipeline=None,
    crypto: str = "null",
    client=None,
    cluster=None,
    shard=None,
    des_jobs: int = 1,
    adversary=None,
) -> tuple[RunResult, DESCluster]:
    """:func:`_load_point` that also returns the finished cluster.

    The parallel sweep workers use the cluster to fingerprint the commit
    trace (via ``commit_trace()``), so serial and multi-process runs can
    be proven identical.  With ``shard.shards > 1`` the returned cluster
    is a :class:`~repro.shard.ShardedCluster` and the result carries
    aggregate metrics plus ``per_shard_tps``.  ``des_jobs > 1`` runs the
    sharded point on the process-parallel engine
    (:mod:`repro.des.parallel`) instead — same numbers, the groups'
    simulators advance across worker processes.

    ``adversary`` injects Byzantine behaviour into the run: an
    :class:`~repro.adversary.behaviors.AdversaryConfig` or the name of a
    registered scenario (whose config is used; its verdict expectations
    only apply to campaigns).  Adversaries require the single-group
    topology — a misbehaving replica inside one group of a sharded
    topology is a different experiment with its own harness.  Note the
    default failure-free timeouts are deliberately enormous; adversarial
    measurements normally pass an explicit ``cluster`` config with a
    realistic ``base_timeout`` so view changes can actually happen.
    """
    cluster_config = cluster
    if cluster_config is not None:
        experiment = ExperimentConfig(cluster=cluster_config, seed=seed)
    else:
        experiment = _experiment(f, seed=seed, base_timeout=120.0, max_timeout=240.0)
    adversary_config = None
    if adversary is not None:
        if shard is not None and shard.shards > 1:
            raise ConfigError("adversary injection requires the single-group topology")
        from repro.adversary.behaviors import AdversaryConfig
        from repro.adversary.scenarios import get_scenario

        adversary_config = (
            get_scenario(adversary).adversary
            if isinstance(adversary, str)
            else adversary
        )
        if not isinstance(adversary_config, AdversaryConfig):
            raise ConfigError(
                f"adversary must be an AdversaryConfig or scenario name, "
                f"got {type(adversary).__name__}"
            )
    if des_jobs > 1:
        if shard is None or shard.shards < 2:
            raise ConfigError(
                "des_jobs > 1 decomposes the run per consensus group; "
                "it requires a sharded topology (shards >= 2)"
            )
        from repro.des.parallel import parallel_sharded_load_point

        return parallel_sharded_load_point(
            experiment,
            shard,
            protocol=protocol,
            clients=clients,
            sim_time=sim_time,
            warmup=warmup,
            request_size=request_size,
            reply_size=reply_size,
            observability=observability,
            pipeline=pipeline,
            crypto=crypto,
            client=client,
            des_jobs=des_jobs,
        )
    if shard is not None and shard.shards > 1:
        return _sharded_load_point(
            experiment,
            shard,
            protocol=protocol,
            clients=clients,
            sim_time=sim_time,
            warmup=warmup,
            request_size=request_size,
            reply_size=reply_size,
            observability=observability,
            pipeline=pipeline,
            crypto=crypto,
            client=client,
        )
    cluster = DESCluster(
        experiment,
        protocol=protocol,
        crypto_mode=crypto,
        observability=observability,
        pipeline=pipeline,
    )
    if adversary_config is not None:
        from repro.adversary.behaviors import apply_adversary

        apply_adversary(cluster, adversary_config, seed=seed)
    clients_pool = ClosedLoopClients(
        cluster,
        num_clients=clients,
        request_size=request_size,
        reply_size=reply_size,
        token_weight=_token_weight(clients),
        target="leader",
        warmup=warmup,
        mode=client.mode if client is not None else "hub",
        client_config=client,
    )
    cluster.start()
    cluster.sim.schedule(0.01, clients_pool.start)
    cluster.run(until=sim_time)
    cluster.assert_safety()
    phase_latency = None
    if observability is not None:
        observability.finish(cluster.sim.now)
        phase_latency = observability.phase_latency_summary()
    summary = clients_pool.summary()
    duration = sim_time - warmup
    result = RunResult(
        clients=clients,
        throughput_tps=clients_pool.throughput.throughput(duration=duration),
        mean_latency=summary["mean_latency"],
        p50_latency=summary["p50_latency"],
        p99_latency=summary["p99_latency"],
        blocks_committed=max(r.stats["blocks_committed"] for r in cluster.replicas),
        sim_time=sim_time,
        phase_latency=phase_latency,
        p90_latency=clients_pool.latency.p90(),
        p999_latency=clients_pool.latency.p999(),
    )
    journey = getattr(observability, "journey", None)
    if journey is not None:
        from repro.obs.journey import build_waterfall

        result.waterfall = build_waterfall(
            journey, end_to_end=clients_pool.latency, window_start=warmup
        )
    return result, cluster


def _sharded_load_point(
    experiment: ExperimentConfig,
    shard,
    protocol: str,
    clients: int,
    sim_time: float,
    warmup: float,
    request_size: int,
    reply_size: int,
    observability,
    pipeline,
    crypto: str,
    client,
):
    """One closed-loop load point over G independent groups.

    Same methodology as the unsharded point — equal per-group cluster
    shape, the global client population routed by key — with aggregate
    throughput summed and latency percentiles computed over the merged
    weighted samples.
    """
    from repro.shard.cluster import ShardedCluster
    from repro.harness.workload import ShardedClosedLoopClients

    # Registries, tracers and flight rings are per-group; the one
    # observability shape a sharded load point accepts is a bare journey
    # recorder, which is shared across groups by design (journey keys
    # are globally unique).
    if observability is not None and not observability.journey_only():
        raise ConfigError(
            "observability collectors are per-group on a sharded run; "
            "drop observability (journey-only layers are allowed) or set "
            "shard.shards == 1"
        )
    journey = observability.journey if observability is not None else None
    sharded = ShardedCluster(
        experiment,
        shard=shard,
        protocol=protocol,
        crypto_mode=crypto,
        pipeline=pipeline,
        journey=journey,
    )
    pool = ShardedClosedLoopClients(
        sharded,
        num_clients=clients,
        request_size=request_size,
        reply_size=reply_size,
        token_weight=_token_weight(clients),
        target="leader",
        warmup=warmup,
        mode=client.mode if client is not None else "hub",
        client_config=client,
    )
    sharded.start()
    sharded.sim.schedule(0.01, pool.start)
    sharded.run(until=sim_time)
    sharded.assert_safety()
    duration = sim_time - warmup
    per_shard_tps = [
        sub.throughput.throughput(duration=duration) if sub is not None else 0.0
        for sub in pool.pools
    ]
    latency = pool.merged_latency()
    blocks = sum(
        max(r.stats["blocks_committed"] for r in group.cluster.replicas)
        for group in sharded.groups
    )
    result = RunResult(
        clients=clients,
        throughput_tps=sum(per_shard_tps),
        mean_latency=latency.mean(),
        p50_latency=latency.p50(),
        p99_latency=latency.p99(),
        blocks_committed=blocks,
        sim_time=sim_time,
        shards=shard.shards,
        per_shard_tps=per_shard_tps,
        p90_latency=latency.p90(),
        p999_latency=latency.p999(),
    )
    if journey is not None:
        from repro.obs.journey import build_waterfall

        result.waterfall = build_waterfall(
            journey, end_to_end=latency, window_start=warmup
        )
    return result, sharded


def _latency_breakdown(
    protocol: str = "marlin",
    f: int = 1,
    clients: int = 512,
    sim_time: float = 22.0,
    warmup: float = 7.0,
    seed: int = 1,
    sample_rate: float = 1.0,
    request_size: int = 150,
    reply_size: int = 150,
    crypto: str = "null",
    client=None,
    cluster=None,
    shard=None,
    pipeline=None,
    des_jobs: int = 1,
):
    """One load point with request-journey tracing armed.

    Runs :func:`_load_point_ex` carrying a journey-only observability
    layer — a seed-derived deterministic sample of the client population
    gets every lifecycle checkpoint recorded (submit → routed → admitted
    → proposed → qc → committed → executed → certified) — and returns
    ``(result, recorder, cluster)``.  ``result.waterfall`` holds the
    critical-path decomposition; the recorder keeps the raw journeys for
    Chrome-trace export and slowest-request inspection.  Works sharded
    (``shard.shards > 1``): the one recorder is shared across groups.
    """
    from repro.obs.journey import JourneyRecorder
    from repro.obs.observer import RunObservability

    recorder = JourneyRecorder(seed, rate=sample_rate)
    observability = RunObservability(trace=False, metrics=False, journey=recorder)
    result, finished = _load_point_ex(
        protocol,
        f,
        clients,
        sim_time=sim_time,
        warmup=warmup,
        request_size=request_size,
        reply_size=reply_size,
        seed=seed,
        observability=observability,
        pipeline=pipeline,
        crypto=crypto,
        client=client,
        cluster=cluster,
        shard=shard,
        des_jobs=des_jobs,
    )
    return result, recorder, finished


def _traced_scenario(
    protocol: str,
    f: int = 1,
    seed: int = 1,
    sim_time: float = 5.0,
    clients: int = 32,
    crash_leader_at: float | None = None,
    force_unhappy: bool = False,
    observability=None,
    pipeline=None,
):
    """A short, fully observed run for trace export (``repro trace``).

    Runs the protocol at light load over the paper's testbed profile —
    every block lifecycle and (with ``crash_leader_at``) a view change
    lands in the returned observability's tracer.  Deterministic: the
    same arguments produce byte-identical Chrome-trace exports.

    Returns ``(cluster, observability)``.
    """
    from repro.obs.observer import RunObservability

    if observability is None:
        observability = RunObservability()
    base_timeout = 0.5 if crash_leader_at is not None else 60.0
    experiment = _experiment(f, seed=seed, batch=2000, base_timeout=base_timeout)
    cluster = DESCluster(
        experiment,
        protocol=protocol,
        crypto_mode="null",
        force_unhappy=force_unhappy,
        observability=observability,
        pipeline=pipeline,
    )
    pool = ClosedLoopClients(
        cluster, num_clients=clients, token_weight=1, target="all", warmup=0.0
    )
    cluster.start()
    cluster.sim.schedule(0.01, pool.start)
    if crash_leader_at is not None:
        cluster.crash_at(0, crash_leader_at)  # replica 0 leads view 1
    cluster.run(until=sim_time)
    cluster.assert_safety()
    observability.finish(cluster.sim.now)
    return cluster, observability


def _throughput_latency_curve(
    protocol: str,
    f: int,
    client_counts: list[int],
    latency_cap: float = LATENCY_CAP,
    jobs: int = 1,
    use_cache: bool = False,
    cache_dir=None,
    **kwargs,
) -> list[RunResult]:
    """Sweep the client population, stopping once latency exceeds the cap.

    The paper's Fig. 10a-f plots stop around 1000 ms; the sweep keeps the
    first point past the cap so the cap crossing can be interpolated.

    ``jobs`` fans the (independent, deterministic) points across worker
    processes; ``use_cache`` reuses on-disk results keyed by scenario +
    code fingerprint.  Both produce output byte-identical to the plain
    serial sweep.  Runs that carry an observability layer stay serial —
    collectors are process-local.
    """
    observability = kwargs.get("observability")
    if (jobs > 1 or use_cache) and observability is None:
        from repro.harness.parallel import ResultCache, SweepExecutor

        task = {"protocol": protocol, "f": f, **kwargs}
        task.pop("observability", None)
        cache = ResultCache(cache_dir) if use_cache else None
        with SweepExecutor(jobs=jobs, cache=cache) as executor:
            return executor.run_curve(task, client_counts, latency_cap)
    if jobs > 1 and observability is not None:
        warnings.warn(
            "observability collectors are process-local; running the sweep serially",
            RuntimeWarning,
            stacklevel=2,
        )
    results: list[RunResult] = []
    for clients in client_counts:
        point = _load_point(protocol, f, clients, **kwargs)
        results.append(point)
        if point.mean_latency > latency_cap:
            break
    return results


def peak_at_latency_cap(curve: list[RunResult], latency_cap: float = LATENCY_CAP) -> float:
    """Throughput (tx/s) where the curve crosses ``latency_cap``.

    Linear interpolation between the last point under the cap and the
    first point over it makes the figure grid-independent; if the whole
    curve sits under the cap the last point's throughput is returned.
    """
    under = [p for p in curve if p.mean_latency <= latency_cap and p.throughput_tps > 0]
    over = [p for p in curve if p.mean_latency > latency_cap]
    if not under:
        return 0.0
    last = max(under, key=lambda p: p.mean_latency)
    if not over:
        return max(p.throughput_tps for p in under)
    first_over = min(over, key=lambda p: p.mean_latency)
    span = first_over.mean_latency - last.mean_latency
    if span <= 0:
        return last.throughput_tps
    fraction = (latency_cap - last.mean_latency) / span
    interpolated = last.throughput_tps + fraction * (
        first_over.throughput_tps - last.throughput_tps
    )
    return max(interpolated, max(p.throughput_tps for p in under))


def _peak_throughput(
    protocol: str,
    f: int,
    client_counts: list[int] | None = None,
    latency_cap: float = LATENCY_CAP,
    jobs: int = 1,
    use_cache: bool = False,
    cache_dir=None,
    strategy: str = "sweep",
    **kwargs,
) -> tuple[float, list[RunResult]]:
    """Peak throughput (Fig. 10g/10h methodology) plus the raw curve.

    ``strategy="sweep"`` walks the client grid linearly (the default, and
    the paper's methodology); ``strategy="bisect"`` binary-searches the
    grid for the latency-cap crossing — closed-loop latency is monotone
    in the client population — evaluating ``jobs`` probes per round.
    """
    if strategy not in ("sweep", "bisect"):
        raise ConfigError(f"strategy must be 'sweep' or 'bisect', got {strategy!r}")
    if client_counts is None:
        client_counts = default_client_sweep(f)
    if strategy == "bisect":
        from repro.harness.parallel import ResultCache, SweepExecutor, bisect_peak

        task = {"protocol": protocol, "f": f, **kwargs}
        task.pop("observability", None)
        cache = ResultCache(cache_dir) if use_cache else None
        with SweepExecutor(jobs=jobs, cache=cache) as executor:
            curve = bisect_peak(executor, task, client_counts, latency_cap)
        return peak_at_latency_cap(curve, latency_cap), curve
    curve = _throughput_latency_curve(
        protocol,
        f,
        client_counts,
        latency_cap,
        jobs=jobs,
        use_cache=use_cache,
        cache_dir=cache_dir,
        **kwargs,
    )
    return peak_at_latency_cap(curve, latency_cap), curve


# ---------------------------------------------------------------------------
# Deprecated public aliases (use repro.api)


def _deprecated(old: str, new: str) -> None:
    warnings.warn(
        f"repro.harness.scenarios.{old} is deprecated; use repro.api.{new}",
        DeprecationWarning,
        stacklevel=3,
    )


def run_load_point(*args, **kwargs) -> RunResult:
    """Deprecated: use :func:`repro.api.load_point`."""
    _deprecated("run_load_point", "load_point")
    return _load_point(*args, **kwargs)


def run_traced_scenario(*args, **kwargs):
    """Deprecated: use :func:`repro.api.traced_run`."""
    _deprecated("run_traced_scenario", "traced_run")
    return _traced_scenario(*args, **kwargs)


def throughput_latency_curve(*args, **kwargs) -> list[RunResult]:
    """Deprecated: use :func:`repro.api.throughput_curve`."""
    _deprecated("throughput_latency_curve", "throughput_curve")
    return _throughput_latency_curve(*args, **kwargs)


def peak_throughput(*args, **kwargs) -> tuple[float, list[RunResult]]:
    """Deprecated: use :func:`repro.api.peak_throughput`."""
    _deprecated("peak_throughput", "peak_throughput")
    return _peak_throughput(*args, **kwargs)


def default_client_sweep(f: int) -> list[int]:
    """A geometric client sweep sized to the cluster's expected capacity."""
    if f <= 1:
        return [1024, 4096, 16384, 32768, 65536, 98304, 131072]
    if f <= 3:
        return [1024, 4096, 16384, 32768, 65536, 98304]
    if f <= 5:
        return [512, 2048, 8192, 16384, 32768, 49152]
    if f <= 10:
        return [512, 2048, 8192, 16384, 24576]
    return [256, 1024, 4096, 8192, 16384]


# ---------------------------------------------------------------------------
# Fig. 10i: view-change latency


@dataclass
class ViewChangeResult:
    """Timing of one leader-crash view change."""

    protocol: str
    f: int
    path: str  # "happy", "unhappy", or "hotstuff"
    vc_start: float
    first_commit: float
    views_crossed: int

    @property
    def latency(self) -> float:
        return self.first_commit - self.vc_start


def view_change_latency(
    protocol: str,
    f: int,
    force_unhappy: bool = False,
    seed: int = 3,
    crash_time: float = 3.0,
) -> ViewChangeResult:
    """Crash the leader and time view-change-start to first commit.

    Matches the paper's measurement: "from the point when a replica
    starts the view change to the point when the first block is
    committed after the view change".
    """
    experiment = _experiment(f, seed=seed, batch=4000, base_timeout=0.5)
    cluster = DESCluster(
        experiment, protocol=protocol, crypto_mode="null", force_unhappy=force_unhappy
    )
    pool = ClosedLoopClients(
        cluster, num_clients=64, token_weight=1, target="all", warmup=0.0
    )
    cluster.start()
    cluster.sim.schedule(0.01, pool.start)
    cluster.crash_at(0, crash_time)  # replica 0 leads view 1
    deadline = crash_time + 30.0
    cluster.run_until(
        lambda: any(
            r.cview >= 2 and r.ledger.num_committed_blocks > 0
            and any(
                when > crash_time and rid != 0
                for rid, _, _, when in cluster.auditor.commits
            )
            for r in cluster.replicas[1:]
        ),
        deadline,
    )
    cluster.assert_safety()
    alive = cluster.replicas[1:]
    vc_start = min(r.view_entered_at for r in alive if r.cview >= 2)
    post = [when for rid, _, _, when in cluster.auditor.commits if when > vc_start and rid != 0]
    if not post:
        raise RuntimeError(f"{protocol} never committed after the view change")
    first_commit = min(post)
    views = max(r.cview for r in alive)
    path = "hotstuff" if protocol == "hotstuff" else ("unhappy" if force_unhappy else "happy")
    return ViewChangeResult(
        protocol=protocol,
        f=f,
        path=path,
        vc_start=vc_start,
        first_commit=first_commit,
        views_crossed=views - 1,
    )


# ---------------------------------------------------------------------------
# Fig. 10j: rotating leaders under crash failures


def rotating_leader_throughput(
    protocol: str,
    f: int = 3,
    crashed: int = 0,
    clients: int = 8192,
    rotation_interval: float = 1.0,
    sim_time: float = 25.0,
    warmup: float = 5.0,
    seed: int = 4,
    batch: int = 8000,
) -> RunResult:
    """Peak throughput with periodic leader rotation and crashed replicas.

    Following the paper: rotate leaders on a 1 s timer (Spinning-style)
    and crash ``crashed`` replicas at the start of the run.  Batches are
    capped lower than in the stable-leader experiments so a view change
    plus several commits fit comfortably inside one rotation period.
    """
    experiment = _experiment(f, seed=seed, batch=batch)
    cluster = DESCluster(
        experiment,
        protocol=protocol,
        crypto_mode="null",
        rotation_interval=rotation_interval,
        forward_requests=False,
    )
    pool = ClosedLoopClients(
        cluster,
        num_clients=clients,
        token_weight=_token_weight(clients),
        target="all",
        warmup=warmup,
    )
    cluster.start()
    cluster.sim.schedule(0.01, pool.start)
    # Crash the last `crashed` replicas so view 1's leader (replica 0)
    # still boots the system, mirroring "crash at the beginning".
    for index in range(crashed):
        cluster.crash_at(experiment.cluster.num_replicas - 1 - index, 0.2)
    cluster.run(until=sim_time)
    cluster.assert_safety()
    summary = pool.summary()
    return RunResult(
        clients=clients,
        throughput_tps=pool.throughput.throughput(duration=sim_time - warmup),
        mean_latency=summary["mean_latency"],
        p50_latency=summary["p50_latency"],
        p99_latency=summary["p99_latency"],
        blocks_committed=max(r.stats["blocks_committed"] for r in cluster.replicas),
        sim_time=sim_time,
        p90_latency=pool.latency.p90(),
        p999_latency=pool.latency.p999(),
    )


# ---------------------------------------------------------------------------
# Normal-case message complexity (per committed block)


@dataclass
class NormalCaseCost:
    """Measured steady-state cost per committed block."""

    protocol: str
    f: int
    n: int
    blocks: int
    messages_per_block: float
    bytes_per_block: float
    authenticators_per_block: float


def measure_normal_case_cost(
    protocol: str, f: int = 1, seed: int = 6, sim_time: float = 12.0, warmup: float = 4.0
) -> NormalCaseCost:
    """Count protocol messages per committed block at steady state.

    Client request/reply traffic is excluded; the counters cover the
    consensus messages only, so event-driven Marlin should show ~4n per
    block (prepare + commit broadcasts and votes), HotStuff ~6n, and the
    chained variants ~2n.

    The attribution runs through the
    :class:`~repro.obs.complexity.ComplexityObservatory` — the same
    instrument ``repro audit`` uses — so the benchmark tables and the
    audit verdicts always read from one counter.
    """
    from repro.obs.complexity import ComplexityObservatory

    experiment = _experiment(f, seed=seed, batch=400, base_timeout=60.0)
    cluster = DESCluster(experiment, protocol=protocol, crypto_mode="null")
    pool = ClosedLoopClients(cluster, num_clients=512, token_weight=4, warmup=warmup)
    observatory = ComplexityObservatory(num_replicas=experiment.cluster.num_replicas)
    observatory.disarm()  # warm-up is excluded from the attribution
    cluster.network.add_tap(observatory.tap)
    counters = {"blocks": 0}

    def on_commit(block, when) -> None:
        if observatory.armed and block.operations:
            counters["blocks"] += 1

    cluster.replicas[1].commit_listeners.append(on_commit)
    cluster.start()
    cluster.sim.schedule(0.01, pool.start)
    cluster.sim.schedule(warmup, observatory.arm)
    cluster.run(until=sim_time)
    cluster.assert_safety()
    blocks = max(counters["blocks"], 1)
    consensus = observatory.consensus
    return NormalCaseCost(
        protocol=protocol,
        f=f,
        n=experiment.cluster.num_replicas,
        blocks=counters["blocks"],
        messages_per_block=consensus.messages / blocks,
        bytes_per_block=consensus.bytes / blocks,
        authenticators_per_block=consensus.authenticators / blocks,
    )


# ---------------------------------------------------------------------------
# Table I: measured view-change cost


@dataclass
class ViewChangeCost:
    """Measured communication/authenticator cost of one view change.

    The ``vc_*`` fields count only the view-change-specific message
    types (VIEW-CHANGE, PRE-PREPARE, aggregate new-view), isolating the
    linear-vs-quadratic contrast from the normal-case traffic that also
    falls inside the measurement window.
    """

    protocol: str
    f: int
    n: int
    messages: int
    bytes_total: int
    authenticators: int
    phases_to_commit: int
    vc_messages: int = 0
    vc_bytes: int = 0
    vc_authenticators: int = 0


def measure_view_change_cost(
    protocol: str, f: int, force_unhappy: bool = False, seed: int = 5
) -> ViewChangeCost:
    """Count messages/bytes/authenticators of a leader-crash view change.

    Traffic is measured from the moment the first correct replica enters
    the new view until the first post-crash commit, through the
    :class:`~repro.obs.complexity.ComplexityObservatory` tap; client
    request/reply traffic is excluded.  The ``vc_*`` fields read the
    observatory's per-type rows for the three view-change message
    classes, so they keep exactly the old ad-hoc counter semantics.
    """
    from repro.obs.complexity import ComplexityObservatory

    experiment = _experiment(f, seed=seed, batch=4000, base_timeout=0.5)
    cluster = DESCluster(
        experiment, protocol=protocol, crypto_mode="null", force_unhappy=force_unhappy
    )
    pool = ClosedLoopClients(cluster, num_clients=32, token_weight=1, target="all")
    observatory = ComplexityObservatory(num_replicas=experiment.cluster.num_replicas)
    observatory.disarm()  # pre-crash traffic is excluded
    cluster.network.add_tap(observatory.tap)
    cluster.start()
    cluster.sim.schedule(0.01, pool.start)
    crash_time = 3.0
    cluster.crash_at(0, crash_time)
    cluster.sim.schedule_at(crash_time, observatory.arm)
    cluster.run_until(
        lambda: any(
            when > crash_time and rid != 0 for rid, _, _, when in cluster.auditor.commits
        ),
        crash_time + 30.0,
    )
    cluster.assert_safety()
    if protocol == "hotstuff":
        phases = 3
    elif force_unhappy:
        phases = 3
    else:
        phases = 2
    consensus = observatory.consensus
    vc = CostCell()
    for name in ("ViewChangeMsg", "PrePrepareMsg", "AggregateNewView"):
        cell = observatory.per_type.get(name)
        if cell is not None:
            vc.messages += cell.messages
            vc.bytes += cell.bytes
            vc.authenticators += cell.authenticators
    return ViewChangeCost(
        protocol=protocol,
        f=f,
        n=experiment.cluster.num_replicas,
        messages=consensus.messages,
        bytes_total=consensus.bytes,
        authenticators=consensus.authenticators,
        phases_to_commit=phases,
        vc_messages=vc.messages,
        vc_bytes=vc.bytes,
        vc_authenticators=vc.authenticators,
    )
