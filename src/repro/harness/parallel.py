"""Parallel experiment engine: multi-process sweeps and result caching.

A throughput/latency curve is a list of *independent* deterministic load
points — each is a pure function of its scenario parameters and the code
that interprets them.  That makes the sweep embarrassingly parallel and
perfectly cacheable:

* :class:`SweepExecutor` fans load points across ``jobs`` worker
  processes (``spawn`` context: each worker imports :mod:`repro` fresh
  and builds its own simulator from the scenario's seed, so no state
  leaks between points).  Results are merged back in submission order and
  the curve's early-stop rule is applied wave-by-wave, so ``jobs=N``
  output is byte-identical to the serial sweep — floats survive pickling
  exactly.

* :class:`ResultCache` is a content-addressed on-disk cache.  The key is
  the SHA-256 of the canonically encoded scenario payload plus a
  fingerprint of every ``repro`` source file, so editing any simulator
  code invalidates all cached points while re-running an unchanged sweep
  costs only file reads.  Values are JSON; Python's shortest-roundtrip
  float ``repr`` guarantees cached results decode bit-identical.

* :func:`bisect_peak` replaces the linear client sweep of the peak-
  throughput methodology with a bounded bisection over the client grid
  (closed-loop latency grows monotonically with the population), probing
  several candidate points per round in parallel.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from concurrent.futures import Future, ProcessPoolExecutor
from dataclasses import asdict, is_dataclass
from multiprocessing import get_context
from pathlib import Path
from typing import Any

from repro.common.encoding import encode
from repro.common.errors import ConfigError
from repro.harness.metrics import RunResult

DEFAULT_CACHE_ENV = "REPRO_CACHE_DIR"
"""Environment variable overriding the on-disk cache location."""

_FINGERPRINT: str | None = None


def code_fingerprint() -> str:
    """SHA-256 over every ``repro`` source file (cached per process).

    Part of every cache key: a result is only reusable if the code that
    produced it is byte-identical, not just the scenario.
    """
    global _FINGERPRINT
    if _FINGERPRINT is None:
        root = Path(__file__).resolve().parent.parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode())
            digest.update(b"\x00")
            digest.update(path.read_bytes())
            digest.update(b"\x00")
        _FINGERPRINT = digest.hexdigest()
    return _FINGERPRINT


def _canonical(value: Any) -> Any:
    """Rewrite ``value`` into the canonical codec's supported types.

    Floats become tagged shortest-roundtrip reprs (the codec is integer/
    bytes/str only); dataclasses (e.g. ``PipelineConfig``) become dicts.
    """
    if isinstance(value, float):
        return ["__float__", repr(value)]
    if is_dataclass(value) and not isinstance(value, type):
        return _canonical(asdict(value))
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    return value


class ResultCache:
    """Content-addressed on-disk cache of load-point results.

    One JSON file per key under ``root`` (default: ``$REPRO_CACHE_DIR``
    or ``~/.cache/repro-marlin``).  Writes are atomic (temp file +
    rename), so concurrent sweeps sharing a cache directory are safe.
    """

    def __init__(self, root: str | Path | None = None) -> None:
        if root is None:
            root = os.environ.get(DEFAULT_CACHE_ENV) or (
                Path.home() / ".cache" / "repro-marlin"
            )
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def key_for(self, payload: dict[str, Any]) -> str:
        """Cache key: canonical encoding of payload + code fingerprint."""
        blob = encode(
            _canonical({"payload": payload, "code": code_fingerprint()})
        )
        return hashlib.sha256(blob).hexdigest()

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def get(self, key: str) -> dict[str, Any] | None:
        path = self._path(key)
        try:
            with open(path, encoding="utf-8") as fh:
                value = json.load(fh)
        except (OSError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return value

    def put(self, key: str, value: dict[str, Any]) -> None:
        path = self._path(key)
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(value, fh)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass

    def clear(self) -> int:
        """Delete every cached entry; returns the number removed."""
        removed = 0
        for path in self.root.glob("*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed


def _eval_point(task: dict[str, Any]) -> dict[str, Any]:
    """Worker entry point: run one task, return plain data.

    Top-level function so the ``spawn`` context can pickle it by
    reference; each worker imports the harness fresh and builds its own
    simulator from the task's seed.  Tasks are load points unless their
    ``kind`` says otherwise — adversary campaign cells dispatch to
    :func:`repro.adversary.campaign._eval_cell` (the distinct ``kind``
    value keeps their cache keys disjoint from load points').  Load-point
    results carry the :class:`RunResult` fields plus a SHA-256 of the
    run's commit trace, which the byte-identity tests compare across
    serial/parallel runs.
    """
    task = dict(task)
    kind = task.pop("kind", "load_point")
    if kind == "adversary_cell":
        from repro.adversary.campaign import _eval_cell

        return _eval_cell(task)
    if kind != "load_point":
        raise ConfigError(f"unknown sweep task kind {kind!r}")

    from repro.harness.scenarios import _load_point_ex

    result, cluster = _load_point_ex(**task)
    trace_sha = hashlib.sha256(encode(cluster.commit_trace())).hexdigest()
    return {"result": asdict(result), "trace_sha256": trace_sha}


def _result_from(value: dict[str, Any]) -> RunResult:
    return RunResult(**value["result"])


class SweepExecutor:
    """Runs independent load points across processes, with caching.

    ``jobs=1`` evaluates inline (no subprocess); ``jobs>1`` uses a lazily
    created ``spawn`` process pool that is reused across calls until
    :meth:`close`.  Results always come back in submission order, and
    curves apply the early-stop rule wave-by-wave, so the merged output
    is byte-identical to a serial sweep regardless of ``jobs``.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: ResultCache | None = None,
    ) -> None:
        if jobs < 1:
            raise ConfigError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.cache = cache
        self._pool: ProcessPoolExecutor | None = None

    # ------------------------------------------------------------ plumbing

    def __enter__(self) -> "SweepExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Shut down the worker pool (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs, mp_context=get_context("spawn")
            )
        return self._pool

    # ------------------------------------------------------------- running

    def run_points(self, tasks: list[dict[str, Any]]) -> list[RunResult]:
        """Evaluate load points; results in the same order as ``tasks``."""
        return [_result_from(v) for v in self._run_raw(tasks)]

    def run_tasks(self, tasks: list[dict[str, Any]]) -> list[dict[str, Any]]:
        """Evaluate arbitrary-kind tasks, returning the raw worker dicts.

        Each task carries a ``kind`` key (default ``load_point``); the
        kind participates in the cache key, so differently-kinded tasks
        never collide.  Used by the adversary campaign runner.
        """
        return self._run_raw(tasks)

    def _run_raw(self, tasks: list[dict[str, Any]]) -> list[dict[str, Any]]:
        values: list[dict[str, Any] | None] = [None] * len(tasks)
        keys: list[str | None] = [None] * len(tasks)
        pending: list[int] = []
        for index, task in enumerate(tasks):
            if self.cache is not None:
                key = self.cache.key_for({"kind": "load_point", **task})
                keys[index] = key
                cached = self.cache.get(key)
                if cached is not None:
                    values[index] = cached
                    continue
            pending.append(index)
        if pending:
            if self.jobs == 1:
                fresh = [_eval_point(tasks[i]) for i in pending]
            else:
                pool = self._ensure_pool()
                futures: list[Future] = [
                    pool.submit(_eval_point, tasks[i]) for i in pending
                ]
                fresh = [future.result() for future in futures]
            for index, value in zip(pending, fresh):
                values[index] = value
                if self.cache is not None and keys[index] is not None:
                    self.cache.put(keys[index], value)
        return values  # type: ignore[return-value]

    def run_curve(
        self,
        base_task: dict[str, Any],
        client_counts: list[int],
        latency_cap: float,
    ) -> list[RunResult]:
        """Sweep ``client_counts``, stopping once latency exceeds the cap.

        Points are evaluated ``jobs`` at a time; after each wave the
        serial early-stop rule applies (keep the first over-cap point,
        drop everything after it), so the result list is identical to a
        one-point-at-a-time sweep.
        """
        results: list[RunResult] = []
        for start in range(0, len(client_counts), self.jobs):
            wave = client_counts[start : start + self.jobs]
            points = self.run_points(
                [{**base_task, "clients": clients} for clients in wave]
            )
            for point in points:
                results.append(point)
                if point.mean_latency > latency_cap:
                    return results
        return results


def bisect_peak(
    executor: SweepExecutor,
    base_task: dict[str, Any],
    client_counts: list[int],
    latency_cap: float,
) -> list[RunResult]:
    """Locate the latency-cap crossing by bisection over the client grid.

    Closed-loop mean latency grows monotonically with the client
    population, so the first over-cap grid index can be found with
    ``O(log n)`` evaluations instead of a linear sweep.  Each round
    splits the unknown interval into ``jobs + 1`` segments and probes the
    interior points concurrently.  Returns the evaluated points in grid
    order, truncated after the first over-cap point — the two points the
    cap interpolation needs (last under, first over) are always adjacent
    grid points, exactly as in the linear sweep.
    """
    if not client_counts:
        return []
    evaluated: dict[int, RunResult] = {}

    def evaluate(indices: list[int]) -> None:
        todo = [i for i in indices if i not in evaluated]
        if not todo:
            return
        points = executor.run_points(
            [{**base_task, "clients": client_counts[i]} for i in todo]
        )
        for index, point in zip(todo, points):
            evaluated[index] = point

    last = len(client_counts) - 1
    evaluate(sorted({0, last}))
    if evaluated[0].mean_latency > latency_cap:
        # The serial sweep stops at the very first point.
        return [evaluated[0]]
    if evaluated[last].mean_latency <= latency_cap:
        # No crossing anywhere: the sweep would evaluate every point.
        evaluate(list(range(len(client_counts))))
        return [evaluated[i] for i in range(len(client_counts))]
    # Invariant: grid[lo] is under the cap, grid[hi] is over it.
    lo, hi = 0, last
    while hi - lo > 1:
        span = hi - lo
        probes = min(executor.jobs, span - 1)
        step = span / (probes + 1)
        indices = sorted({lo + max(1, round(step * (k + 1))) for k in range(probes)})
        indices = [i for i in indices if lo < i < hi]
        if not indices:
            indices = [(lo + hi) // 2]
        evaluate(indices)
        for index in indices:
            if evaluated[index].mean_latency > latency_cap:
                hi = index
                break
            lo = index
    # Keep grid order; drop any probes beyond the first over-cap point
    # (the serial sweep never evaluates past it).
    ordered = [evaluated[i] for i in sorted(evaluated) if i <= hi]
    return ordered
