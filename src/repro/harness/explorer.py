"""Schedule exploration: adversarial interleavings for safety checking.

The DES delivers messages in network order; real adversaries control
scheduling.  :class:`ScheduleExplorer` puts the adversary in charge: it
holds every in-flight message in a pending pool and, step by step, lets a
seeded RNG decide whether to deliver an arbitrary pending message,
*drop* it, or fire some replica's view timer.  Replicas run the genuine
protocol code over :class:`~repro.consensus.context.LocalContext`.

After each schedule the explorer checks **agreement**: every pair of
replicas' committed sequences must be prefixes of one another.  Liveness
is deliberately not asserted — an adversarial schedule may starve the
system, which is allowed under partial synchrony.

This is the heavy cousin of the hypothesis drop-bit tests: thousands of
schedules with reordering (not just loss), crash injection and timeout
interleaving.  `tests/test_explorer.py` runs a bounded batch per
protocol; `python -m repro explore` runs bigger hunts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any

from repro.common.config import ClusterConfig
from repro.common.errors import SafetyViolation
from repro.consensus.context import LocalContext
from repro.consensus.crypto_service import CryptoService, NullCryptoService
from repro.consensus.messages import ClientRequest
from repro.consensus.replica_base import TIMER_VIEW, ReplicaBase


@dataclass
class ScheduleResult:
    """Outcome of one explored schedule."""

    seed: int
    steps: int
    delivered: int
    dropped: int
    timeouts_fired: int
    max_view: int
    committed_heights: list[int] = field(default_factory=list)
    agreement: bool = True


class ScheduleExplorer:
    """Run one adversarial schedule against fresh replicas."""

    def __init__(
        self,
        replica_cls: type[ReplicaBase],
        seed: int,
        n: int = 4,
        ops: int = 6,
        max_steps: int = 600,
        drop_probability: float = 0.15,
        timeout_probability: float = 0.05,
        crash_probability: float = 0.3,
    ) -> None:
        self.rng = random.Random(seed)
        self.seed = seed
        self.config = ClusterConfig.for_f((n - 1) // 3, batch_size=4)
        crypto: CryptoService = NullCryptoService(n, self.config.quorum)
        self.contexts = [LocalContext(i, n) for i in range(n)]
        self.replicas = [
            replica_cls(
                replica_id=i, config=self.config, ctx=self.contexts[i], crypto=crypto
            )
            for i in range(n)
        ]
        self.ops = ops
        self.max_steps = max_steps
        self.drop_probability = drop_probability
        self.timeout_probability = timeout_probability
        self.crash_probability = crash_probability
        self.crashed: set[int] = set()
        self.pending: list[tuple[int, int, Any]] = []

    def _collect_outboxes(self) -> None:
        for src, ctx in enumerate(self.contexts):
            for dst, payload in ctx.drain():
                if src not in self.crashed and dst not in self.crashed:
                    self.pending.append((src, dst, payload))

    def run(self) -> ScheduleResult:
        rng = self.rng
        for replica in self.replicas:
            replica.start()
        self._collect_outboxes()
        # Client load lands at every replica (rotation-safe intake).
        for seq in range(self.ops):
            request = ClientRequest(client_id=99, sequence=seq, payload=b"op%d" % seq)
            for replica in self.replicas:
                replica.forward_requests = False
                replica.on_message(-1, request)
        self._collect_outboxes()

        # The adversary may crash one replica at a scheduled step.
        crash_step = (
            rng.randrange(self.max_steps) if rng.random() < self.crash_probability else None
        )
        crash_victim = rng.randrange(len(self.replicas))

        result = ScheduleResult(seed=self.seed, steps=0, delivered=0, dropped=0, timeouts_fired=0, max_view=0)
        for step in range(self.max_steps):
            result.steps = step + 1
            if step == crash_step and len(self.crashed) < self.config.f:
                self.crashed.add(crash_victim)
                self.pending = [
                    (s, d, p) for s, d, p in self.pending
                    if s != crash_victim and d != crash_victim
                ]
            # Occasionally fire a random armed view timer.
            if rng.random() < self.timeout_probability:
                candidates = [
                    i for i, ctx in enumerate(self.contexts)
                    if i not in self.crashed and TIMER_VIEW in ctx.timers
                ]
                if candidates:
                    victim = rng.choice(candidates)
                    self.contexts[victim].fire_timer(TIMER_VIEW)
                    result.timeouts_fired += 1
                    self._collect_outboxes()
            if not self.pending:
                break
            index = rng.randrange(len(self.pending))
            src, dst, payload = self.pending.pop(index)
            if rng.random() < self.drop_probability:
                result.dropped += 1
                continue
            self.replicas[dst].on_message(src, payload)
            result.delivered += 1
            self._collect_outboxes()

        result.max_view = max(r.cview for r in self.replicas)
        result.committed_heights = [
            r.ledger.committed_height for r in self.replicas
        ]
        result.agreement = self._check_agreement()
        return result

    def _check_agreement(self) -> bool:
        chains = [
            replica.ledger.committed_digests()
            for i, replica in enumerate(self.replicas)
            if i not in self.crashed
        ]
        for chain in chains:
            for other in chains:
                overlap = min(len(chain), len(other))
                if chain[:overlap] != other[:overlap]:
                    return False
        return True


def explore(
    replica_cls: type[ReplicaBase],
    schedules: int,
    base_seed: int = 0,
    **kwargs: Any,
) -> list[ScheduleResult]:
    """Run many schedules; raise :class:`SafetyViolation` on disagreement."""
    results = []
    for offset in range(schedules):
        explorer = ScheduleExplorer(replica_cls, seed=base_seed + offset, **kwargs)
        result = explorer.run()
        if not result.agreement:
            raise SafetyViolation(
                f"schedule seed={result.seed} produced conflicting commits: "
                f"{result.committed_heights}"
            )
        results.append(result)
    return results
