"""Protocol timelines: structured event traces from DES runs.

A :class:`Timeline` taps the simulated network and the replicas' commit
streams and produces a time-ordered, human-readable account of a run —
the tool for debugging protocol behaviour and for documentation (the
view-change anatomy example renders one).

Events recorded per delivery: time, sender, receiver, message kind and a
compact detail string (phase, view, heights).  Commit and view-change
events come from replica listeners.  Rendering is plain text, one event
per line, with optional filtering.

Since the observability layer landed, the timeline is a *view* over a
:class:`~repro.obs.tracer.Tracer`: every entry is stored as a tracer
instant (network lane), and :attr:`Timeline.events` materialises the
familiar :class:`Event` rows from it.  The text rendering is unchanged;
:meth:`Timeline.chrome_trace` additionally exports the same events in
Chrome ``trace_event`` format for Perfetto.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable

from repro.obs.tracer import LANE_NET, Tracer

from repro.consensus.messages import (
    AggregateNewView,
    ClientRequestBatch,
    PhaseMsg,
    PrePrepareMsg,
    ReplyBatch,
    SyncRequest,
    SyncResponse,
    ViewChangeMsg,
    VoteMsg,
)


@dataclass(frozen=True)
class Event:
    """One timeline entry."""

    time: float
    kind: str
    src: int
    dst: int
    detail: str

    def render(self) -> str:
        actor = f"r{self.src}" if self.src >= 0 else "-"
        target = f"r{self.dst}" if self.dst >= 0 else "-"
        return f"{self.time:9.4f}  {self.kind:<12} {actor:>4} -> {target:<4} {self.detail}"


def describe(payload: Any) -> tuple[str, str]:
    """(kind, detail) for any protocol payload."""
    if isinstance(payload, PhaseMsg):
        qc = payload.justify.qc
        block = f" h={payload.block.height}" if payload.block is not None else ""
        return (
            payload.phase.value,
            f"v={payload.view}{block} justify={qc.phase.value}@{qc.view}",
        )
    if isinstance(payload, VoteMsg):
        attach = " +lockedQC" if payload.locked_qc is not None else ""
        return (
            f"vote:{payload.phase.value}",
            f"v={payload.view} h={payload.block.height}"
            f"{' virtual' if payload.block.is_virtual else ''}{attach}",
        )
    if isinstance(payload, PrePrepareMsg):
        kinds = "+".join(
            "virtual" if p.block.is_virtual else "normal" for p in payload.proposals
        )
        return ("pre-prepare", f"v={payload.view} proposals={kinds} shadow={payload.shadow}")
    if isinstance(payload, ViewChangeMsg):
        lb = f" lb_h={payload.last_voted.height}" if payload.last_voted else ""
        return ("view-change", f"v={payload.view}{lb}")
    if isinstance(payload, AggregateNewView):
        return ("agg-new-view", f"v={payload.view} proofs={len(payload.proofs)}")
    if isinstance(payload, SyncRequest):
        return ("sync-req", f"{len(payload.digests)} digest(s)")
    if isinstance(payload, SyncResponse):
        return ("sync-resp", f"{len(payload.blocks)} block(s)")
    if isinstance(payload, ClientRequestBatch):
        return ("requests", f"{sum(op.weight for op in payload.operations)} ops")
    if isinstance(payload, ReplyBatch):
        return ("replies", f"{payload.num_ops} ops")
    return (type(payload).__name__, "")


class Timeline:
    """Collects and renders the events of one DES run.

    Storage is a :class:`~repro.obs.tracer.Tracer` (one instant per
    event, network lane), so a timeline doubles as a Chrome-trace source;
    pass your own ``tracer`` to share it with a
    :class:`~repro.obs.observer.RunObservability`.
    """

    def __init__(
        self, include_client_traffic: bool = False, tracer: Tracer | None = None
    ) -> None:
        self.tracer = tracer if tracer is not None else Tracer()
        self.include_client_traffic = include_client_traffic

    @property
    def events(self) -> list[Event]:
        """The recorded entries as :class:`Event` rows (insertion order)."""
        return [
            Event(
                time=instant.ts,
                kind=instant.name,
                src=instant.meta.get("src", instant.replica),
                dst=instant.meta.get("dst", instant.replica),
                detail=instant.meta.get("detail", ""),
            )
            for instant in self.tracer.instants
            if instant.meta.get("timeline", False)
        ]

    def _add(self, time: float, kind: str, src: int, dst: int, detail: str) -> None:
        self.tracer.instant(
            max(src, 0), kind, time, lane=LANE_NET,
            timeline=True, src=src, dst=dst, detail=detail,
        )

    # -------------------------------------------------------------- wiring

    def attach(self, cluster: Any) -> "Timeline":
        """Tap a :class:`~repro.harness.des_runtime.DESCluster`."""
        cluster.network.add_tap(self._on_delivery)
        for replica in cluster.replicas:
            self._watch_replica(cluster, replica)
        return self

    def _on_delivery(self, envelope: Any) -> None:
        if not self.include_client_traffic and isinstance(
            envelope.payload, (ClientRequestBatch, ReplyBatch)
        ):
            return
        kind, detail = describe(envelope.payload)
        self._add(envelope.sent_at, kind, envelope.src, envelope.dst, detail)

    def _watch_replica(self, cluster: Any, replica: Any) -> None:
        replica_id = replica.id

        def on_commit(block: Any, when: float) -> None:
            self._add(
                when,
                "COMMIT",
                replica_id,
                replica_id,
                f"h={block.height} ops={block.num_ops}"
                f"{' virtual' if block.is_virtual else ''}",
            )

        replica.commit_listeners.append(on_commit)

    def record(self, time: float, kind: str, detail: str, actor: int = -1) -> None:
        """Manually add an annotation event."""
        self._add(time, kind, actor, actor, detail)

    # ----------------------------------------------------------- rendering

    def filtered(
        self,
        kinds: Iterable[str] | None = None,
        start: float = 0.0,
        end: float = float("inf"),
        predicate: Callable[[Event], bool] | None = None,
    ) -> list[Event]:
        selected = []
        kind_set = set(kinds) if kinds is not None else None
        for event in sorted(self.events, key=lambda e: (e.time, e.src, e.dst)):
            if not start <= event.time <= end:
                continue
            if kind_set is not None and event.kind not in kind_set:
                continue
            if predicate is not None and not predicate(event):
                continue
            selected.append(event)
        return selected

    def render(self, limit: int | None = None, **filter_kwargs) -> str:
        events = self.filtered(**filter_kwargs)
        if limit is not None:
            events = events[:limit]
        header = f"{'time':>9}  {'event':<12} {'from':>4}    {'to':<4} detail"
        return "\n".join([header, "-" * len(header)] + [e.render() for e in events])

    def counts(self) -> dict[str, int]:
        """Event-kind histogram (useful for complexity assertions)."""
        out: dict[str, int] = {}
        for event in self.events:
            out[event.kind] = out.get(event.kind, 0) + 1
        return out

    def chrome_trace(self) -> str:
        """The same events as a Chrome ``trace_event`` JSON document."""
        return self.tracer.chrome_trace()
