"""Latency and throughput instrumentation.

Both recorders support a measurement window so warm-up (pipeline filling,
view-1 bootstrap) is excluded, matching standard evaluation methodology.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.utils import mean, percentile


@dataclass
class LatencyRecorder:
    """Collects (timestamp, latency, weight) samples."""

    window_start: float = 0.0
    window_end: float = float("inf")
    samples: list[tuple[float, float, int]] = field(default_factory=list)

    def record(self, when: float, latency: float, weight: int = 1) -> None:
        if self.window_start <= when <= self.window_end:
            self.samples.append((when, latency, weight))

    def _weighted_percentile(self, pct: float) -> float:
        """Nearest-rank percentile over the weighted samples.

        Walks the latency-sorted samples accumulating weight until the
        target rank — no per-operation entries are materialised, and
        heavy samples (large batches) carry their full weight rather
        than a capped one.  With all weights 1 this matches
        :func:`repro.common.utils.percentile` exactly.
        """
        if not self.samples:
            return 0.0
        if not 0.0 <= pct <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {pct}")
        ordered = sorted(self.samples, key=lambda s: s[1])
        if pct == 0.0:
            return ordered[0][1]
        total = self.count
        index = min(max(1, int(round(pct / 100.0 * total + 0.5)) - 1), total - 1)
        cumulative = 0
        for _, latency, weight in ordered:
            cumulative += weight
            if cumulative > index:
                return latency
        return ordered[-1][1]

    @property
    def count(self) -> int:
        return sum(w for _, _, w in self.samples)

    def mean(self) -> float:
        total_weight = self.count
        if total_weight == 0:
            return 0.0
        return sum(lat * w for _, lat, w in self.samples) / total_weight

    def p50(self) -> float:
        return self._weighted_percentile(50.0)

    def p90(self) -> float:
        return self._weighted_percentile(90.0)

    def p99(self) -> float:
        return self._weighted_percentile(99.0)

    def p999(self) -> float:
        return self._weighted_percentile(99.9)

    def summary(self) -> dict[str, float]:
        """The standard percentile readout as one plain dict."""
        return {
            "count": self.count,
            "mean": self.mean(),
            "p50": self.p50(),
            "p90": self.p90(),
            "p99": self.p99(),
            "p999": self.p999(),
        }

    def reset(self) -> None:
        self.samples.clear()


@dataclass
class ThroughputMeter:
    """Counts weighted operations committed inside a window."""

    window_start: float = 0.0
    window_end: float = float("inf")
    ops: int = 0
    first_event: float | None = None
    last_event: float | None = None

    def record(self, when: float, num_ops: int) -> None:
        if not self.window_start <= when <= self.window_end:
            return
        self.ops += num_ops
        if self.first_event is None:
            self.first_event = when
        self.last_event = when

    def throughput(self, duration: float | None = None) -> float:
        """Operations per second over the window (or supplied duration)."""
        if duration is None:
            if self.first_event is None or self.last_event is None:
                return 0.0
            duration = self.last_event - self.first_event
        if duration <= 0:
            return 0.0
        return self.ops / duration


@dataclass
class RunResult:
    """One (offered load, measured) point of a throughput/latency sweep."""

    clients: int
    throughput_tps: float
    mean_latency: float
    p50_latency: float
    p99_latency: float
    blocks_committed: int
    sim_time: float
    #: Optional per-phase latency breakdown ({phase: {count, mean, p50,
    #: p99}}), populated when the run carried an observability layer.
    phase_latency: dict[str, dict[str, float]] | None = None
    #: Consensus groups the point ran over (1 = the unsharded runtime);
    #: throughput/latency are then cluster-wide aggregates.
    shards: int = 1
    #: Per-shard committed throughput when ``shards > 1``.
    per_shard_tps: list[float] | None = None
    #: Tail percentiles beyond p99 (0.0 when the run recorded no samples).
    p90_latency: float = 0.0
    p999_latency: float = 0.0
    #: Latency waterfall from the journey layer ({stages, end_to_end,
    #: journeys, ...} — see :func:`repro.obs.journey.build_waterfall`),
    #: populated when the run carried a journey recorder.
    waterfall: dict | None = None

    def as_row(self) -> str:
        return (
            f"clients={self.clients:>7d}  tput={self.throughput_tps / 1000:8.2f} ktx/s  "
            f"lat(mean)={self.mean_latency * 1000:7.1f} ms  "
            f"lat(p99)={self.p99_latency * 1000:7.1f} ms  blocks={self.blocks_committed}"
        )


def summarise(values: list[float]) -> dict[str, float]:
    """Mean/median/p99 of a plain float list (utility for benches)."""
    return {
        "mean": mean(values),
        "p50": percentile(values, 50.0),
        "p99": percentile(values, 99.0),
    }
