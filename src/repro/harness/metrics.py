"""Latency and throughput instrumentation.

Both recorders support a measurement window so warm-up (pipeline filling,
view-1 bootstrap) is excluded, matching standard evaluation methodology.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.utils import mean, percentile


@dataclass
class LatencyRecorder:
    """Collects (timestamp, latency, weight) samples."""

    window_start: float = 0.0
    window_end: float = float("inf")
    samples: list[tuple[float, float, int]] = field(default_factory=list)

    def record(self, when: float, latency: float, weight: int = 1) -> None:
        if self.window_start <= when <= self.window_end:
            self.samples.append((when, latency, weight))

    def _expanded(self) -> list[float]:
        # Weighted percentile without materialising per-tx entries: repeat
        # each sample min(weight, cap) times to bound memory.
        out: list[float] = []
        for _, latency, weight in self.samples:
            out.extend([latency] * min(weight, 32))
        return out

    @property
    def count(self) -> int:
        return sum(w for _, _, w in self.samples)

    def mean(self) -> float:
        total_weight = self.count
        if total_weight == 0:
            return 0.0
        return sum(lat * w for _, lat, w in self.samples) / total_weight

    def p50(self) -> float:
        return percentile(self._expanded(), 50.0)

    def p99(self) -> float:
        return percentile(self._expanded(), 99.0)

    def reset(self) -> None:
        self.samples.clear()


@dataclass
class ThroughputMeter:
    """Counts weighted operations committed inside a window."""

    window_start: float = 0.0
    window_end: float = float("inf")
    ops: int = 0
    first_event: float | None = None
    last_event: float | None = None

    def record(self, when: float, num_ops: int) -> None:
        if not self.window_start <= when <= self.window_end:
            return
        self.ops += num_ops
        if self.first_event is None:
            self.first_event = when
        self.last_event = when

    def throughput(self, duration: float | None = None) -> float:
        """Operations per second over the window (or supplied duration)."""
        if duration is None:
            if self.first_event is None or self.last_event is None:
                return 0.0
            duration = self.last_event - self.first_event
        if duration <= 0:
            return 0.0
        return self.ops / duration


@dataclass
class RunResult:
    """One (offered load, measured) point of a throughput/latency sweep."""

    clients: int
    throughput_tps: float
    mean_latency: float
    p50_latency: float
    p99_latency: float
    blocks_committed: int
    sim_time: float

    def as_row(self) -> str:
        return (
            f"clients={self.clients:>7d}  tput={self.throughput_tps / 1000:8.2f} ktx/s  "
            f"lat(mean)={self.mean_latency * 1000:7.1f} ms  "
            f"lat(p99)={self.p99_latency * 1000:7.1f} ms  blocks={self.blocks_committed}"
        )


def summarise(values: list[float]) -> dict[str, float]:
    """Mean/median/p99 of a plain float list (utility for benches)."""
    return {
        "mean": mean(values),
        "p50": percentile(values, 50.0),
        "p99": percentile(values, 99.0),
    }
