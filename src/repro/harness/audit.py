"""Audited DES runs: flight recorder + online auditor + observatory.

This is the harness behind ``repro audit``.  One :func:`audited_run`
boots a DES cluster with the full forensic observability stack armed —
per-replica :class:`~repro.obs.flight.FlightRecorder` rings, the
streaming :class:`~repro.obs.audit.OnlineAuditor`, and a
:class:`~repro.obs.complexity.ComplexityObservatory` network tap — runs
a closed-loop workload (optionally with one Byzantine replica), and
returns an :class:`AuditReport`: the auditor's verdict, the cost
attribution, and the path of the black-box dump when one was written.

:func:`complexity_sweep` is the empirical Table 1 instrument: it repeats
a happy-path run and a leader-crash view change at several cluster sizes
(n ∈ {4, 16, 32, 64, 100} by default), reads per-view wire bytes and
authenticator counts from the observatory, and fits log-log cost-vs-n
slopes — the paper's O(n) happy-path / O(n) view-change linearity claims
become assertions that every fitted slope stays below ``max_slope``.

Dump determinism: the DES is deterministic and the black-box codec
stores timestamps as integer microseconds, so re-running the same
``(protocol, n, seed, byzantine)`` writes a byte-identical dump.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any

from repro.common.config import ClusterConfig, ExperimentConfig
from repro.common.errors import ConfigError
from repro.harness.des_runtime import DESCluster
from repro.harness.failures import Equivocator, ReplyForger, make_byzantine
from repro.harness.workload import ClosedLoopClients
from repro.obs.complexity import ComplexityObservatory, SlopeFit
from repro.obs.observer import RunObservability

#: Cluster sizes the wide-n sweep measures (the observatory's x axis).
SWEEP_SIZES = (4, 16, 32, 64, 100)

#: Byzantine strategies ``audited_run`` can inject.
BYZANTINE_MODES = ("none", "equivocator", "reply-forger")

#: Log-log slope bound below which a cost curve counts as linear.
DEFAULT_MAX_SLOPE = 1.3


# ---------------------------------------------------------------------------
# One audited run


@dataclass
class AuditReport:
    """Everything one audited run produced, JSON-able via :meth:`to_dict`."""

    protocol: str
    n: int
    seed: int
    sim_time: float
    byzantine: str
    committed_height: int
    stalled: bool
    audit: dict[str, Any]
    complexity: dict[str, Any]
    events_recorded: dict[int, int] = field(default_factory=dict)
    blackbox_path: str | None = None

    @property
    def ok(self) -> bool:
        """No violations and the cluster made progress."""
        return bool(self.audit.get("ok", True)) and not self.stalled

    @property
    def violations(self) -> list[dict[str, Any]]:
        return list(self.audit.get("violations", []))

    def to_dict(self) -> dict[str, Any]:
        return {
            "protocol": self.protocol,
            "n": self.n,
            "seed": self.seed,
            "sim_time": self.sim_time,
            "byzantine": self.byzantine,
            "committed_height": self.committed_height,
            "stalled": self.stalled,
            "ok": self.ok,
            "audit": self.audit,
            "complexity": self.complexity,
            "events_recorded": {str(k): v for k, v in sorted(self.events_recorded.items())},
            "blackbox_path": self.blackbox_path,
        }

    def render(self) -> str:
        """Human-readable verdict + per-phase cost table for the CLI."""
        lines = [
            f"audit: {self.protocol} n={self.n} seed={self.seed} "
            f"byzantine={self.byzantine}",
            f"  committed height {self.committed_height}, "
            f"{self.audit.get('events_audited', 0)} events audited, "
            f"{sum(self.events_recorded.values())} flight events recorded",
        ]
        by_kind = self.audit.get("violations_by_kind", {})
        if by_kind:
            kinds = ", ".join(f"{kind} x{count}" for kind, count in sorted(by_kind.items()))
            lines.append(f"  VIOLATIONS: {kinds}")
            shown = self.violations[:8]
            for violation in shown:
                lines.append(
                    f"    [{violation['severity']}] {violation['kind']} "
                    f"t={violation['time']:.3f}: {violation['detail']}"
                )
            hidden = len(self.violations) - len(shown)
            if hidden > 0:
                lines.append(f"    ... and {hidden} more")
        else:
            lines.append("  no invariant violations")
        if self.stalled:
            lines.append("  LIVENESS: the cluster stalled (no recent commit)")
        if self.blackbox_path is not None:
            lines.append(f"  black box: {self.blackbox_path}")
        per_phase = self.complexity.get("per_phase", {})
        if per_phase:
            lines.append("  wire cost by phase (messages / bytes / authenticators):")
            for phase, cell in per_phase.items():
                lines.append(
                    f"    {phase:<12} {cell['messages']:>8} {cell['bytes']:>12,} "
                    f"{cell['authenticators']:>8}"
                )
        return "\n".join(lines)


def audited_run(
    protocol: str = "marlin",
    n: int = 4,
    sim_time: float = 10.0,
    warmup: float = 2.0,
    seed: int = 7,
    clients: int = 64,
    byzantine: str = "none",
    dump: str = "on-violation",
    dump_dir: str | None = None,
    crypto: str = "null",
    flight_capacity: int = 4096,
    base_timeout: float = 0.5,
) -> AuditReport:
    """Run one fully audited DES experiment and return its report.

    ``byzantine`` injects one faulty replica: ``"equivocator"`` makes the
    view-1 leader (replica 0) propose conflicting siblings, and
    ``"reply-forger"`` makes replica 1 lie to clients about execution
    results (this forces the real client protocol, since only it carries
    per-operation result digests on the wire).  ``dump`` is one of
    ``"never"``, ``"on-violation"`` (also on stall) or ``"always"``; the
    black box lands in ``dump_dir`` (default: the working directory).
    """
    if byzantine not in BYZANTINE_MODES:
        raise ConfigError(f"byzantine must be one of {BYZANTINE_MODES}, got {byzantine!r}")
    if dump not in ("never", "on-violation", "always"):
        raise ConfigError(f"dump must be never/on-violation/always, got {dump!r}")
    cluster_config = ClusterConfig(
        num_replicas=n, batch_size=400, base_timeout=base_timeout
    )
    experiment = ExperimentConfig(cluster=cluster_config, seed=seed)
    observability = RunObservability(
        trace=False, flight=True, audit=True, metrics=False,
        flight_capacity=flight_capacity,
    )
    cluster = DESCluster(
        experiment, protocol=protocol, crypto_mode=crypto, observability=observability
    )
    observatory = ComplexityObservatory(num_replicas=n)
    observatory.disarm()  # warm-up traffic is excluded from the table
    cluster.network.add_tap(observatory.tap)

    mode = "real" if byzantine == "reply-forger" else "hub"
    client_config = None
    if mode == "real":
        from repro.client.config import ClientConfig

        client_config = ClientConfig(mode="real")
    pool = ClosedLoopClients(
        cluster,
        num_clients=clients,
        token_weight=1,
        target="all",
        warmup=warmup,
        mode=mode,
        client_config=client_config,
    )
    if byzantine == "equivocator":
        make_byzantine(cluster, 0, Equivocator(n))  # replica 0 leads view 1
    elif byzantine == "reply-forger":
        make_byzantine(cluster, 1, ReplyForger())

    cluster.start()
    cluster.sim.schedule(0.01, pool.start)
    cluster.sim.schedule(warmup, observatory.arm)
    cluster.run(until=sim_time)

    committed = max(r.ledger.committed_height for r in cluster.replicas)
    auditor = observability.auditor
    assert auditor is not None
    stall_window = max(6.0 * base_timeout, 2.0)
    stalled = committed == 0 or (sim_time - auditor.last_commit_time) > stall_window
    report = AuditReport(
        protocol=protocol,
        n=n,
        seed=seed,
        sim_time=sim_time,
        byzantine=byzantine,
        committed_height=committed,
        stalled=stalled,
        audit=observability.audit_report(),
        complexity=observatory.snapshot(),
        events_recorded={
            rid: rec.total_recorded for rid, rec in observability.recorders.items()
        },
    )
    should_dump = dump == "always" or (
        dump == "on-violation" and (not report.audit["ok"] or stalled)
    )
    if should_dump:
        directory = dump_dir or "."
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(
            directory, f"blackbox-{protocol}-n{n}-seed{seed}-{byzantine}.bin"
        )
        observability.write_blackbox(
            path,
            meta={
                "protocol": protocol,
                "n": n,
                "seed": seed,
                "byzantine": byzantine,
                "sim_time_us": round(sim_time * 1_000_000),
                "committed_height": committed,
                "ok": report.audit["ok"] and not stalled,
            },
        )
        report.blackbox_path = path
    return report


# ---------------------------------------------------------------------------
# Wide-n complexity sweep (the empirical Table 1)


@dataclass
class SweepPoint:
    """Observatory readout of one (protocol, n) measurement."""

    n: int
    rounds: int
    messages: float
    bytes: float
    authenticators: float


@dataclass
class ComplexitySweep:
    """Cost-vs-n curves plus the fitted linearity verdicts."""

    protocol: str
    sizes: list[int]
    happy: list[SweepPoint]
    view_change: list[SweepPoint]
    fits: list[SlopeFit]

    @property
    def linear(self) -> bool:
        return all(fit.linear for fit in self.fits)

    @property
    def max_slope(self) -> float:
        slopes = [fit.slope for fit in self.fits if fit.slope == fit.slope]
        return max(slopes) if slopes else float("nan")

    def to_dict(self) -> dict[str, Any]:
        def rows(points: list[SweepPoint]) -> list[dict[str, Any]]:
            return [
                {
                    "n": p.n,
                    "rounds": p.rounds,
                    "messages": p.messages,
                    "bytes": p.bytes,
                    "authenticators": p.authenticators,
                }
                for p in points
            ]

        return {
            "protocol": self.protocol,
            "sizes": self.sizes,
            "happy_path_per_view": rows(self.happy),
            "view_change": rows(self.view_change),
            "fits": [
                {
                    "metric": fit.metric,
                    "slope": fit.slope,
                    "max_slope": fit.max_slope,
                    "linear": fit.linear,
                    "points": [[n, cost] for n, cost in fit.points],
                }
                for fit in self.fits
            ],
            "linear": self.linear,
        }

    def render(self) -> str:
        """The empirical Table 1, formatted for the CLI."""
        lines = [
            f"empirical linearity — {self.protocol}, n ∈ {self.sizes}",
            "  happy path, per view (messages / bytes / authenticators):",
        ]
        for point in self.happy:
            lines.append(
                f"    n={point.n:<4} {point.messages:>8.1f} {point.bytes:>12,.0f} "
                f"{point.authenticators:>8.1f}   ({point.rounds} rounds)"
            )
        lines.append("  view change, per leader crash:")
        for point in self.view_change:
            lines.append(
                f"    n={point.n:<4} {point.messages:>8.1f} {point.bytes:>12,.0f} "
                f"{point.authenticators:>8.1f}"
            )
        for fit in self.fits:
            lines.append("  " + fit.render())
        verdict = "linear ✓" if self.linear else "NOT linear ✗"
        lines.append(f"  verdict: {verdict} (log-log slope bound {self.fits[0].max_slope})")
        return "\n".join(lines)


def _happy_point(protocol: str, n: int, seed: int) -> SweepPoint:
    """Steady-state happy-path cost per consensus round at size ``n``.

    Stable leader (huge view timer), light closed-loop load, null crypto
    with the paper's cost model: each committed block is one happy-path
    view's worth of traffic, so cost-per-round is the per-view cost the
    paper's Table 1 bounds.
    """
    warmup, sim_time = 2.0, 6.0
    config = ClusterConfig(num_replicas=n, batch_size=400, base_timeout=60.0)
    experiment = ExperimentConfig(cluster=config, seed=seed)
    cluster = DESCluster(experiment, protocol=protocol, crypto_mode="null")
    pool = ClosedLoopClients(cluster, num_clients=64, token_weight=1, warmup=warmup)
    observatory = ComplexityObservatory(num_replicas=n)
    observatory.disarm()
    cluster.network.add_tap(observatory.tap)
    counters = {"blocks": 0}

    def on_commit(block: Any, when: float) -> None:
        if observatory.armed and block.operations:
            counters["blocks"] += 1

    cluster.replicas[1].commit_listeners.append(on_commit)
    cluster.start()
    cluster.sim.schedule(0.01, pool.start)
    cluster.sim.schedule(warmup, observatory.arm)
    cluster.run(until=sim_time)
    cluster.assert_safety()
    rounds = max(counters["blocks"], 1)
    consensus = observatory.consensus
    return SweepPoint(
        n=n,
        rounds=counters["blocks"],
        messages=consensus.messages / rounds,
        bytes=consensus.bytes / rounds,
        authenticators=consensus.authenticators / rounds,
    )


def _view_change_point(protocol: str, n: int, seed: int) -> SweepPoint:
    """Cost of one leader-crash view change at size ``n``.

    Counts only the view-change message classes (VIEW-CHANGE,
    PRE-PREPARE, aggregate new-view) between the crash and the first
    post-crash commit, read from the observatory's per-type rows.
    """
    config = ClusterConfig(num_replicas=n, batch_size=400, base_timeout=0.5)
    experiment = ExperimentConfig(cluster=config, seed=seed)
    cluster = DESCluster(experiment, protocol=protocol, crypto_mode="null")
    pool = ClosedLoopClients(cluster, num_clients=32, token_weight=1, target="all")
    observatory = ComplexityObservatory(num_replicas=n)
    observatory.disarm()
    cluster.network.add_tap(observatory.tap)
    cluster.start()
    cluster.sim.schedule(0.01, pool.start)
    crash_time = 3.0
    cluster.crash_at(0, crash_time)  # replica 0 leads view 1
    cluster.sim.schedule_at(crash_time, observatory.arm)
    # A post-crash commit alone is not enough to stop on: a commit QC for
    # a pre-crash block can still be in flight, landing after the crash
    # but before any view change.  Wait until a quorum of survivors has
    # actually entered view 2, then run a short grace period so the view
    # change's tail traffic is fully attributed.
    survivors = cluster.replicas[1:]
    needed = config.quorum - 1
    cluster.run_until(
        lambda: sum(1 for r in survivors if r.cview >= 2) >= needed,
        crash_time + 30.0,
    )
    cluster.run(until=cluster.sim.now + 1.0)
    cluster.assert_safety()
    messages = bytes_total = authenticators = 0
    for name in ("ViewChangeMsg", "PrePrepareMsg", "AggregateNewView"):
        cell = observatory.per_type.get(name)
        if cell is not None:
            messages += cell.messages
            bytes_total += cell.bytes
            authenticators += cell.authenticators
    return SweepPoint(
        n=n,
        rounds=1,
        messages=float(messages),
        bytes=float(bytes_total),
        authenticators=float(authenticators),
    )


def complexity_sweep(
    protocol: str = "marlin",
    sizes: tuple[int, ...] | list[int] = SWEEP_SIZES,
    seed: int = 11,
    max_slope: float = DEFAULT_MAX_SLOPE,
) -> ComplexitySweep:
    """Fit per-view cost-vs-n slopes across DES runs (empirical Table 1).

    Four curves are fitted: happy-path bytes and authenticators per view,
    and view-change bytes and authenticators per leader crash.  For
    Marlin the paper claims all four are O(n); a fitted log-log slope
    below ``max_slope`` confirms it empirically (quadratic growth would
    fit ≈ 2).
    """
    sizes = sorted(set(int(s) for s in sizes))
    if any(s < 4 for s in sizes):
        raise ConfigError(f"cluster sizes must be >= 4, got {sizes}")
    happy = [_happy_point(protocol, n, seed) for n in sizes]
    view_change = [_view_change_point(protocol, n, seed) for n in sizes]
    fits = [
        SlopeFit(
            "happy-path bytes/view",
            [(p.n, p.bytes) for p in happy],
            max_slope,
        ),
        SlopeFit(
            "happy-path authenticators/view",
            [(p.n, p.authenticators) for p in happy],
            max_slope,
        ),
        SlopeFit(
            "view-change bytes",
            [(p.n, p.bytes) for p in view_change],
            max_slope,
        ),
        SlopeFit(
            "view-change authenticators",
            [(p.n, p.authenticators) for p in view_change],
            max_slope,
        ),
    ]
    return ComplexitySweep(
        protocol=protocol,
        sizes=sizes,
        happy=happy,
        view_change=view_change,
        fits=fits,
    )
