"""Workloads: the closed-loop client population of Section VI.

:class:`ClosedLoopClients` models the paper's evaluation clients: a fixed
population of ``num_clients`` logical clients, each with exactly one
outstanding 150-byte request.  A request is acknowledged once ``f + 1``
matching replica replies arrive; the client then immediately submits its
next request.  Sweeping ``num_clients`` traces out the throughput-versus-
latency curves of Fig. 10a-10f, and "no-op" workloads (``request_size =
reply_size = 0``) reproduce Fig. 10h.

Scaling device: clients are grouped into *tokens* of ``token_weight``
clients that move in lockstep (one :class:`Operation` object of that
weight).  Wire sizes, CPU costs and throughput all scale by the weight,
so the simulated load equals the paper's while the event count stays
tractable.  ``token_weight = 1`` recovers exact per-client simulation.

The client population lives at one *hub* endpoint whose egress is
unshaped (it stands for many machines); replicas answer with one
aggregate :class:`~repro.consensus.messages.ReplyBatch` per committed
block, whose wire size equals the sum of the individual replies.
"""

from __future__ import annotations

from typing import Any

from repro.client.config import ClientConfig
from repro.client.service import attach_client_services
from repro.client.session import result_digest_of
from repro.common.errors import ConfigError
from repro.consensus.block import Block, Operation
from repro.consensus.messages import ClientRequestBatch, ReplyBatch
from repro.consensus.replica_base import ReplicaBase
from repro.harness.des_runtime import DESCluster
from repro.harness.metrics import LatencyRecorder, ThroughputMeter
from repro.obs.journey import CK_CERTIFIED, CK_EXECUTED, CK_ROUTED, CK_SUBMIT


def _attach_reply_sender(pool, replica: ReplicaBase) -> None:
    """Make ``replica`` send an aggregate ReplyBatch to the pool's hub on
    every commit (shared by the open- and closed-loop generators)."""
    hub_id = pool.hub_id
    reply_size = pool.reply_size
    journey = getattr(pool, "_journey", None)
    # Blocks travel by reference in the DES, so every replica commits the
    # *same* Block object; memoize its op-key and result-digest tuples on
    # the pool so the n-replica fan-in builds them once instead of n
    # times per block.  (Hub replies carry no execution results, so each
    # digest is the deterministic empty-result digest — the same value a
    # real ClientService without an application would report.)
    if not hasattr(pool, "_op_keys_memo"):
        pool._op_keys_memo = (None, (), ())

    def keys_and_digests_of(block: Block) -> tuple[tuple, tuple]:
        memo_block, memo_keys, memo_digests = pool._op_keys_memo
        if memo_block is block:
            return memo_keys, memo_digests
        keys = tuple(op._key for op in block.operations)
        digests = tuple(result_digest_of(c, s, b"") for c, s in keys)
        pool._op_keys_memo = (block, keys, digests)
        return keys, digests

    def on_commit(block: Block, when: float) -> None:
        if not block.operations:
            return
        # The hub model has no application: "executed" is the moment the
        # proposing replica turns the commit into replies — recorded from
        # the proposer only, so each journey gets the checkpoint once.
        if journey is not None and block.proposer == replica.id:
            journey.record_ops(block.operations, CK_EXECUTED, when)
        keys, digests = keys_and_digests_of(block)
        batch = ReplyBatch(
            replica=replica.id,
            block_digest=block.digest,
            op_keys=keys,
            num_ops=block.num_ops,
            reply_size=reply_size,
            result_digests=digests,
            view=replica.cview,
        )
        replica.ctx.send(hub_id, batch)

    replica.commit_listeners.append(on_commit)


class OpenLoopClients:
    """Open-loop (Poisson) load generator.

    Where the closed-loop population throttles itself (Little's law), an
    open-loop source submits at a fixed rate regardless of completions —
    the standard way to expose saturation and queueing collapse.  Arrivals
    are generated in small batches (one DES event per ``tick`` interval)
    with exponential inter-arrival spacing *within* the tick, so per-op
    arrival timestamps remain Poisson-faithful while the event count stays
    bounded.

    Latency is measured per operation from its (generated) arrival time to
    the ``f + 1``-th replica reply, exactly like the closed-loop pool.
    """

    def __init__(
        self,
        cluster: "DESCluster",
        rate_tps: float,
        request_size: int | None = None,
        reply_size: int | None = None,
        token_weight: int = 1,
        target: str = "leader",
        warmup: float = 0.0,
        tick: float = 0.02,
    ) -> None:
        if rate_tps <= 0:
            raise ConfigError("rate must be positive")
        if token_weight < 1:
            raise ConfigError("token_weight must be >= 1")
        if target not in ("leader", "all"):
            raise ConfigError("target must be 'leader' or 'all'")
        self.cluster = cluster
        experiment = cluster.experiment
        self.rate = rate_tps
        self.request_size = experiment.request_size if request_size is None else request_size
        self.reply_size = experiment.reply_size if reply_size is None else reply_size
        self.token_weight = token_weight
        self.target = target
        self.tick = tick
        # The hub sits just above the replica id range (learners included).
        self.hub_id = experiment.cluster.total_replicas
        self.f = experiment.cluster.f

        self.latency = LatencyRecorder(window_start=warmup)
        self.throughput = ThroughputMeter(window_start=warmup)
        self._submit_time: dict[tuple[int, int], float] = {}
        #: Replica-id bitmask per outstanding op (cheaper than a set).
        self._acks: dict[tuple[int, int], int] = {}
        self._next_seq = 0
        self._carry = 0.0
        self._payload = b"x" * self.request_size
        self.generated_ops = 0
        self.acknowledged_ops = 0

        cluster.network.register(self.hub_id, self._on_message)
        cluster.network.set_unshaped(self.hub_id)
        # Reuse the closed-loop reply plumbing.  Only voting replicas
        # answer clients — learner commits are evidence, not replies.
        for replica in cluster.replicas[: experiment.cluster.num_replicas]:
            _attach_reply_sender(self, replica)

    def start(self) -> None:
        self._tick()

    def _tick(self) -> None:
        sim = self.cluster.sim
        expected = self.rate * self.tick / self.token_weight + self._carry
        count = int(expected)
        self._carry = expected - count
        ops: list[Operation] = []
        for _ in range(count):
            seq = self._next_seq
            self._next_seq += 1
            op = Operation(
                client_id=1_000_000, sequence=seq, payload=self._payload,
                weight=self.token_weight,
            )
            # Spread the arrival inside the tick (Poisson-ish spacing).
            self._submit_time[op._key] = sim.now + sim.rng.uniform(0.0, self.tick)
            ops.append(op)
            self.generated_ops += self.token_weight
        if ops:
            batch = ClientRequestBatch(operations=tuple(ops))
            if self.target == "leader":
                self.cluster.network.send(self.hub_id, self.cluster.leader_replica.id, batch)
            else:
                for replica_id in range(self.cluster.experiment.cluster.num_replicas):
                    self.cluster.network.send(self.hub_id, replica_id, batch)
        sim.schedule(self.tick, self._tick)

    def _on_message(self, src: int, payload: Any) -> None:
        if not isinstance(payload, ReplyBatch):
            return
        now = self.cluster.sim.now
        replica_bit = 1 << payload.replica
        need = self.f + 1
        weight = self.token_weight
        submit_time = self._submit_time
        acks = self._acks
        for key in payload.op_keys:
            submitted = submit_time.get(key)
            if submitted is None:
                continue
            mask = acks.get(key, 0) | replica_bit
            if mask.bit_count() < need:
                acks[key] = mask
                continue
            del submit_time[key]
            acks.pop(key, None)
            self.acknowledged_ops += weight
            self.latency.record(now, now - submitted, weight=weight)
            self.throughput.record(now, weight)

    @property
    def completed_ops(self) -> int:
        """Ops acknowledged inside the measurement window."""
        return self.throughput.ops

    @property
    def backlog_ops(self) -> int:
        """Generated but not yet acknowledged (weighted)."""
        return len(self._submit_time) * self.token_weight

    def summary(self) -> dict[str, float]:
        return {
            "throughput_tps": self.throughput.throughput(),
            "mean_latency": self.latency.mean(),
            "p50_latency": self.latency.p50(),
            "p99_latency": self.latency.p99(),
        }


class ClosedLoopClients:
    """Closed-loop client population attached to a :class:`DESCluster`.

    Two client models share this interface:

    * ``mode="hub"`` (default) — the aggregate lockstep population used
      by every published figure: one unshaped hub endpoint, batched
      submissions, bitmask ``f + 1`` acks.  Fast and faithful in the
      bandwidth model, but no client-side protocol.
    * ``mode="real"`` — one genuine
      :class:`~repro.client.session.ClientSession` per token, driven
      through the DES network: leader routing, retransmit-to-all with
      backoff, reply certificates from ``f + 1`` matching result
      digests, and replica-side session-table dedup + admission.  The
      two modes must agree on committed throughput within a few percent
      (asserted by the workload-equivalence test).
    """

    def __init__(
        self,
        cluster: DESCluster,
        num_clients: int,
        request_size: int | None = None,
        reply_size: int | None = None,
        token_weight: int = 1,
        target: str = "leader",
        warmup: float = 0.0,
        mode: str = "hub",
        client_config: ClientConfig | None = None,
        client_ids: list[int] | None = None,
        shard: int | None = None,
    ) -> None:
        if num_clients < 1:
            raise ConfigError("need at least one client")
        if token_weight < 1:
            raise ConfigError("token_weight must be >= 1")
        if target not in ("leader", "all"):
            raise ConfigError("target must be 'leader' or 'all'")
        if mode not in ("hub", "real"):
            raise ConfigError("mode must be 'hub' or 'real'")
        self.cluster = cluster
        #: Shard this pool's clients were routed to (None = unsharded);
        #: journeys then carry an explicit "routed" checkpoint.
        self.shard = shard
        journey = getattr(cluster.observability, "journey", None)
        self._journey = journey if journey is not None and journey.enabled else None
        experiment = cluster.experiment
        self.request_size = experiment.request_size if request_size is None else request_size
        self.reply_size = experiment.reply_size if reply_size is None else reply_size
        self.token_weight = token_weight
        self.target = target
        self.mode = mode
        self.num_clients = num_clients
        self.num_tokens = max(1, num_clients // token_weight)
        self.hub_id = experiment.cluster.total_replicas
        self.f = experiment.cluster.f
        # Token identities.  The default 0..T-1 keeps every existing trace
        # byte-identical; a sharded workload passes the global client ids
        # its router assigned to this group so the groups' misroute guards
        # (and the routing-determinism tests) see honest identities.
        self._explicit_ids = client_ids is not None
        if client_ids is None:
            self.client_ids = list(range(self.num_tokens))
        else:
            if len(client_ids) != self.num_tokens:
                raise ConfigError(
                    f"client_ids has {len(client_ids)} entries for "
                    f"{self.num_tokens} tokens"
                )
            self.client_ids = list(client_ids)
        # Journey sampling, resolved once: the population is fixed, so
        # the per-op question "is this client traced?" is a set lookup.
        journey = self._journey
        self._sampled_ids = (
            frozenset(cid for cid in self.client_ids if journey.sampled(cid))
            if journey is not None
            else frozenset()
        )

        self.latency = LatencyRecorder(window_start=warmup)
        self.throughput = ThroughputMeter(window_start=warmup)
        self._submit_time: dict[tuple[int, int], float] = {}
        #: Replica-id bitmask per outstanding op (cheaper than a set).
        self._acks: dict[tuple[int, int], int] = {}
        self._next_seq: dict[int, int] = {}
        self._payload = b"x" * self.request_size
        self._endpoints: list[Any] = []
        self.services: list[Any] = []

        if mode == "real":
            self._setup_real(client_config)
        else:
            cluster.network.register(self.hub_id, self._on_message)
            cluster.network.set_unshaped(self.hub_id)
            for replica in cluster.replicas[: experiment.cluster.num_replicas]:
                _attach_reply_sender(self, replica)

    # ------------------------------------------------------------ plumbing

    def _setup_real(self, client_config: ClientConfig | None) -> None:
        """Build one protocol client per token (see module docstring)."""
        from repro.client.runtime import DESClientEndpoint

        config = client_config or ClientConfig(mode="real")
        self.client_config = config
        self.services = attach_client_services(
            self.cluster, config, reply_size=self.reply_size
        )
        total_replicas = self.cluster.experiment.cluster.total_replicas
        for token, client_id in enumerate(self.client_ids):
            # Default ids (0..T-1) predate endpoint addressing and map to
            # the legacy endpoint range; explicit (sharded) ids are already
            # globally unique endpoint ids above the replica range and are
            # used verbatim.
            endpoint_id = client_id if self._explicit_ids else total_replicas + token
            endpoint = DESClientEndpoint(
                self.cluster,
                endpoint_id,
                config,
                weight=self.token_weight,
                on_result=self._real_result_sink(token),
            )
            self._endpoints.append(endpoint)

    def _real_result_sink(self, token: int):
        weight = self.token_weight
        payload = self._payload

        def on_result(sequence: int, outcome: Any, latency: float) -> None:
            now = self.cluster.sim.now
            self.latency.record(now, latency, weight=weight)
            self.throughput.record(now, weight)
            # Closed loop: the certificate for one request releases the
            # next one immediately.
            self._endpoints[token].session.submit(payload)

        return on_result

    def start(self) -> None:
        """Inject the initial window: one outstanding request per client."""
        if self.mode == "real":
            for endpoint in self._endpoints:
                endpoint.session.submit(self._payload)
            return
        ops = [self._new_op(client_id) for client_id in self.client_ids]
        self._submit(ops)

    def _new_op(self, client_id: int) -> Operation:
        seq = self._next_seq.get(client_id, 0)
        self._next_seq[client_id] = seq + 1
        op = Operation(
            client_id=client_id, sequence=seq, payload=self._payload,
            weight=self.token_weight,
        )
        now = self.cluster.sim.now
        self._submit_time[op._key] = now
        if client_id in self._sampled_ids:
            journey = self._journey
            journey.record(client_id, seq, CK_SUBMIT, now)
            if self.shard is not None:
                # Hub routing is the router's partition — instantaneous,
                # but the checkpoint pins the journey to its shard.
                journey.record(client_id, seq, CK_ROUTED, now)
        return op

    def _submit(self, ops: list[Operation]) -> None:
        if not ops:
            return
        batch = ClientRequestBatch(operations=tuple(ops))
        if self.target == "leader":
            leader = self.cluster.leader_replica.id
            self.cluster.network.send(self.hub_id, leader, batch)
        else:
            for replica_id in range(self.cluster.experiment.cluster.num_replicas):
                self.cluster.network.send(self.hub_id, replica_id, batch)

    # ------------------------------------------------------------- intake

    def _on_message(self, src: int, payload: Any) -> None:
        if not isinstance(payload, ReplyBatch):
            return
        now = self.cluster.sim.now
        replica_bit = 1 << payload.replica
        need = self.f + 1
        weight = self.token_weight
        submit_time = self._submit_time
        acks = self._acks
        record_latency = self.latency.record
        record_throughput = self.throughput.record
        new_op = self._new_op
        journey = self._journey
        sampled_ids = self._sampled_ids
        fresh: list[Operation] = []
        for key in payload.op_keys:
            submitted = submit_time.get(key)
            if submitted is None:
                continue  # already acknowledged and recycled
            mask = acks.get(key, 0) | replica_bit
            if mask.bit_count() < need:
                acks[key] = mask
                continue
            del submit_time[key]
            acks.pop(key, None)
            record_latency(now, now - submitted, weight=weight)
            record_throughput(now, weight)
            if key[0] in sampled_ids:
                journey.record(key[0], key[1], CK_CERTIFIED, now)
            fresh.append(new_op(key[0]))
        self._submit(fresh)

    # ------------------------------------------------------------ readouts

    @property
    def completed_ops(self) -> int:
        return self.throughput.ops

    @property
    def retransmits(self) -> int:
        """Total client retransmit rounds (``mode="real"`` only)."""
        return sum(e.session.retransmits for e in self._endpoints)

    @property
    def certified(self) -> int:
        """Requests completed with a full reply certificate."""
        return sum(e.session.certified for e in self._endpoints)

    @property
    def shed(self) -> int:
        """Requests dropped by replica admission windows."""
        return sum(s.shed for s in self.services)

    @property
    def replays(self) -> int:
        """Duplicate requests answered from replica session caches."""
        return sum(s.sessions.replays for s in self.services)

    @property
    def reply_mismatches(self) -> int:
        """Replies contradicting a certified/majority digest (forgeries)."""
        return sum(e.session.collector.mismatches for e in self._endpoints)

    def summary(self) -> dict[str, float]:
        return {
            "throughput_tps": self.throughput.throughput(),
            "mean_latency": self.latency.mean(),
            "p50_latency": self.latency.p50(),
            "p99_latency": self.latency.p99(),
        }

    def stats(self) -> dict[str, Any]:
        """:meth:`summary` plus tail percentiles and client-path counters."""
        out: dict[str, Any] = dict(self.summary())
        out["p90_latency"] = self.latency.p90()
        out["p999_latency"] = self.latency.p999()
        out["latency"] = self.latency.summary()
        out["completed_ops"] = self.completed_ops
        if self.mode == "real":
            out["retransmits"] = self.retransmits
            out["certified"] = self.certified
            out["shed"] = self.shed
            out["replays"] = self.replays
            out["reply_mismatches"] = self.reply_mismatches
        return out


class ShardedClosedLoopClients:
    """Cross-shard closed-loop population over a sharded deployment.

    The global client population is partitioned by the deployment's own
    :class:`~repro.client.router.ShardRouter` — every token's commands go
    to the one group its identity routes to, so the groups' misroute
    guards see only honest traffic.  Each group gets an ordinary
    :class:`ClosedLoopClients` sub-pool on its private network; the
    aggregate readouts sum committed throughput and merge the weighted
    latency samples, so cluster-wide percentiles are computed over the
    union of samples rather than averaged per shard.

    Global token ids start at ``total_replicas + 1`` so they are valid
    endpoint ids in ``mode="real"`` and never collide with a group's hub
    (or with any learner replica).
    """

    def __init__(
        self,
        sharded: Any,
        num_clients: int,
        request_size: int | None = None,
        reply_size: int | None = None,
        token_weight: int = 1,
        target: str = "leader",
        warmup: float = 0.0,
        mode: str = "hub",
        client_config: ClientConfig | None = None,
    ) -> None:
        if num_clients < 1:
            raise ConfigError("need at least one client")
        if token_weight < 1:
            raise ConfigError("token_weight must be >= 1")
        self.sharded = sharded
        self.num_clients = num_clients
        self.token_weight = token_weight
        self.num_tokens = max(1, num_clients // token_weight)
        self.warmup = warmup
        base = sharded.experiment.cluster.total_replicas + 1
        self.client_ids = [base + i for i in range(self.num_tokens)]
        partition = sharded.router.partition_clients(self.client_ids)
        #: One sub-pool per group (``None`` where no client routed).
        self.pools: list[ClosedLoopClients | None] = []
        for shard_id, sub_ids in enumerate(partition):
            if not sub_ids:
                self.pools.append(None)
                continue
            self.pools.append(
                ClosedLoopClients(
                    sharded.groups[shard_id].cluster,
                    num_clients=len(sub_ids) * token_weight,
                    request_size=request_size,
                    reply_size=reply_size,
                    token_weight=token_weight,
                    target=target,
                    warmup=warmup,
                    mode=mode,
                    client_config=client_config,
                    client_ids=sub_ids,
                    shard=shard_id,
                )
            )

    def start(self) -> None:
        """Inject the initial window on every populated group."""
        for pool in self.pools:
            if pool is not None:
                pool.start()

    # ------------------------------------------------------------ readouts

    @property
    def completed_ops(self) -> int:
        return sum(pool.completed_ops for pool in self.pools if pool is not None)

    def per_shard_tps(self) -> list[float]:
        return [
            pool.throughput.throughput() if pool is not None else 0.0
            for pool in self.pools
        ]

    def merged_latency(self) -> LatencyRecorder:
        """All groups' weighted latency samples in one recorder."""
        merged = LatencyRecorder(window_start=self.warmup)
        for pool in self.pools:
            if pool is not None:
                merged.samples.extend(pool.latency.samples)
        return merged

    def summary(self) -> dict[str, Any]:
        latency = self.merged_latency()
        per_shard = self.per_shard_tps()
        return {
            "throughput_tps": sum(per_shard),
            "mean_latency": latency.mean(),
            "p50_latency": latency.p50(),
            "p99_latency": latency.p99(),
            "per_shard_tps": per_shard,
            "misrouted_rejected": self.sharded.misrouted_rejected,
        }

    def stats(self) -> dict[str, Any]:
        """:meth:`summary` plus tail percentiles over the merged samples."""
        out: dict[str, Any] = dict(self.summary())
        latency = self.merged_latency()
        out["p90_latency"] = latency.p90()
        out["p999_latency"] = latency.p999()
        out["latency"] = latency.summary()
        out["completed_ops"] = self.completed_ops
        return out
