"""Cross-replica safety auditing.

The paper's safety theorem (Theorem 1): no two correct replicas commit
conflicting blocks.  :class:`CommitAuditor` observes every commit in an
experiment and checks the equivalent operational statement — at each
height, all replicas commit the same block digest, and each replica's
committed sequence has strictly increasing heights.  Every DES experiment
and every adversarial test runs with the auditor armed.
"""

from __future__ import annotations

from typing import Callable

from repro.common.errors import SafetyViolation
from repro.consensus.block import Block


class CommitAuditor:
    """Collects (replica, height, digest) commit records and cross-checks."""

    def __init__(self, num_replicas: int) -> None:
        self._num_replicas = num_replicas
        self._by_height: dict[int, bytes] = {}
        self._first_committer: dict[int, int] = {}
        self._last_height: dict[int, int] = {}
        self.commits: list[tuple[int, int, bytes, float]] = []

    def listener_for(self, replica_id: int) -> Callable[[Block, float], None]:
        def listener(block: Block, when: float) -> None:
            self.observe(replica_id, block, when)

        return listener

    def observe(self, replica_id: int, block: Block, when: float) -> None:
        height = block.height
        digest = block.digest
        self.commits.append((replica_id, height, digest, when))
        previous = self._last_height.get(replica_id, 0)
        if height <= previous:
            raise SafetyViolation(
                f"replica {replica_id} committed height {height} after {previous}"
            )
        self._last_height[replica_id] = height
        existing = self._by_height.get(height)
        if existing is None:
            self._by_height[height] = digest
            self._first_committer[height] = replica_id
        elif existing != digest:
            raise SafetyViolation(
                f"conflicting commits at height {height}: replica "
                f"{self._first_committer[height]} vs replica {replica_id}"
            )

    def check(self) -> None:
        """Re-validate the whole record (also raised eagerly in observe)."""
        seen: dict[int, bytes] = {}
        for replica_id, height, digest, _ in self.commits:
            existing = seen.get(height)
            if existing is not None and existing != digest:
                raise SafetyViolation(f"conflicting commits at height {height}")
            seen[height] = digest

    @property
    def max_committed_height(self) -> int:
        return max(self._by_height, default=0)

    def commits_by_replica(self, replica_id: int) -> list[int]:
        """Heights committed by one replica, in commit order."""
        return [h for rid, h, _, _ in self.commits if rid == replica_id]
