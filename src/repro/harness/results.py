"""Result persistence and regression comparison.

Experiments produce scalar metrics (peak throughput per f, view-change
latencies, complexity counts).  :class:`ResultStore` writes them to a
JSON file with run metadata; :func:`compare` diffs two stores with a
relative tolerance and reports regressions — the tool behind
``python -m repro peak --save ...`` / ``python -m repro compare``.

The format is flat on purpose: a mapping from dotted metric names
(``"fig10g.marlin.f3"``) to numbers, so diffs stay trivial and files stay
greppable.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Iterator


@dataclass
class Delta:
    """One metric's change between two stores."""

    name: str
    before: float | None
    after: float | None

    @property
    def kind(self) -> str:
        if self.before is None:
            return "added"
        if self.after is None:
            return "removed"
        return "changed"

    @property
    def relative(self) -> float | None:
        if self.before in (None, 0) or self.after is None:
            return None
        return (self.after - self.before) / abs(self.before)

    def render(self) -> str:
        if self.kind == "added":
            return f"+ {self.name} = {self.after:g} (new)"
        if self.kind == "removed":
            return f"- {self.name} (was {self.before:g})"
        rel = self.relative
        pct = f" ({rel * 100:+.1f}%)" if rel is not None else ""
        return f"~ {self.name}: {self.before:g} -> {self.after:g}{pct}"


@dataclass
class ResultStore:
    """A named bag of scalar metrics, serialisable to JSON."""

    metrics: dict[str, float] = field(default_factory=dict)
    meta: dict[str, str] = field(default_factory=dict)

    def record(self, name: str, value: float) -> None:
        if not name or not isinstance(name, str):
            raise ValueError("metric names must be non-empty strings")
        self.metrics[name] = float(value)

    def record_many(self, prefix: str, values: dict) -> None:
        for key, value in values.items():
            self.record(f"{prefix}.{key}", value)

    def save(self, path: str) -> None:
        payload = {"meta": self.meta, "metrics": self.metrics}
        tmp = path + ".tmp"
        with open(tmp, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        os.replace(tmp, path)

    @classmethod
    def load(cls, path: str) -> "ResultStore":
        with open(path) as fh:
            payload = json.load(fh)
        store = cls()
        store.meta = dict(payload.get("meta", {}))
        store.metrics = {k: float(v) for k, v in payload.get("metrics", {}).items()}
        return store

    def __len__(self) -> int:
        return len(self.metrics)


def diff(before: ResultStore, after: ResultStore) -> Iterator[Delta]:
    """Yield every metric difference, in name order."""
    names = sorted(set(before.metrics) | set(after.metrics))
    for name in names:
        b = before.metrics.get(name)
        a = after.metrics.get(name)
        if b != a:
            yield Delta(name=name, before=b, after=a)


def compare(before: ResultStore, after: ResultStore, tolerance: float = 0.05) -> list[Delta]:
    """Return deltas whose relative change exceeds ``tolerance``.

    Additions/removals always count.  The returned list being empty means
    "no regression beyond tolerance".
    """
    significant = []
    for delta in diff(before, after):
        if delta.kind != "changed":
            significant.append(delta)
            continue
        rel = delta.relative
        if rel is None or abs(rel) > tolerance:
            significant.append(delta)
    return significant
