"""Paper-versus-measured report formatting.

Every benchmark prints its figure/table through these helpers so
``pytest benchmarks/ --benchmark-only`` output reads like the paper's
evaluation section, and EXPERIMENTS.md can be assembled from the same
rows.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class PaperPoint:
    """A number reported in the paper, for side-by-side comparison."""

    label: str
    value: float
    unit: str = ""


def format_table(title: str, headers: list[str], rows: list[list[str]]) -> str:
    """Plain fixed-width table with a title banner."""
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = ["", "=" * max(len(title), 8), title, "=" * max(len(title), 8)]
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def ratio_str(a: float, b: float) -> str:
    """Format ``a`` relative to ``b`` as a signed percentage."""
    if b == 0:
        return "n/a"
    return f"{(a - b) / b * 100.0:+.1f}%"


def ktx(value_tps: float) -> str:
    return f"{value_tps / 1000.0:.2f}"


def ms(value_seconds: float) -> str:
    return f"{value_seconds * 1000.0:.1f}"


def print_banner(text: str) -> None:
    print()
    print("#" * 72)
    print(f"# {text}")
    print("#" * 72)
