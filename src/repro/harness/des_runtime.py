"""Wiring replicas into the discrete-event simulator.

:class:`DESContext` adapts one :class:`~repro.des.process.Process` and the
shared :class:`~repro.network.simnet.SimNetwork` to the sans-io
:class:`~repro.consensus.context.NodeContext` contract.  CPU realism:

* inbound messages are *processed* when the replica's CPU is free — a
  busy replica queues work exactly like a saturated server;
* outbound messages *leave* when all CPU work charged before the send has
  completed, so a leader that must verify a quorum of shares cannot
  broadcast the resulting QC early.

:class:`DESCluster` assembles an ``n``-replica cluster of any protocol
("marlin", "hotstuff", "insecure") over any crypto scheme ("threshold",
"multisig", "null") and exposes crash injection, the safety auditor, and
the traffic counters the complexity benchmarks read.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.common.config import ExperimentConfig
from repro.common.errors import ConfigError
from repro.consensus.block import Block
from repro.consensus.context import NodeContext
from repro.consensus.costs import PaperCostModel, ZeroCostModel
from repro.consensus.crypto_service import (
    CryptoService,
    MultisigCryptoService,
    NullCryptoService,
    ThresholdCryptoService,
)
from repro.consensus.chained import ChainedHotStuffReplica, ChainedMarlinReplica
from repro.consensus.fasthotstuff import FastHotStuffReplica
from repro.consensus.hotstuff.replica import HotStuffReplica
from repro.consensus.learner import LearnerReplica
from repro.consensus.marlin.replica import MarlinReplica
from repro.consensus.pipeline import PipelineConfig
from repro.consensus.replica_base import ReplicaBase
from repro.consensus.twophase_insecure import TwoPhaseInsecureReplica
from repro.crypto.keys import KeyRegistry
from repro.des.process import Process
from repro.des.simulator import Simulator
from repro.des.timers import TimerWheel
from repro.harness.invariants import CommitAuditor
from repro.network.message import WireSizer
from repro.network.simnet import SimNetwork

PROTOCOLS: dict[str, type[ReplicaBase]] = {
    "marlin": MarlinReplica,
    "hotstuff": HotStuffReplica,
    "chained-marlin": ChainedMarlinReplica,
    "chained-hotstuff": ChainedHotStuffReplica,
    "fast-hotstuff": FastHotStuffReplica,
    "insecure": TwoPhaseInsecureReplica,
}


class DESContext(NodeContext):
    """NodeContext bound to one simulated process."""

    def __init__(
        self,
        process: Process,
        network: SimNetwork,
        replica_id: int,
        num_replicas: int,
    ) -> None:
        self._process = process
        self._network = network
        self._id = replica_id
        self._n = num_replicas
        self._timers = TimerWheel(process.sim)

    @property
    def now(self) -> float:
        return self._process.sim.now

    def charge(self, seconds: float) -> None:
        if seconds > 0:
            self._process.charge(seconds)

    def send(self, dst: int, payload: Any) -> None:
        ready_at = self._process.cpu_free_at
        if ready_at <= self.now:
            self._network.send(self._id, dst, payload)
        else:
            self._process.run_at(
                ready_at, lambda: self._network.send(self._id, dst, payload), "net-send"
            )

    def broadcast(self, payload: Any) -> None:
        for dst in range(self._n):
            self.send(dst, payload)

    def set_timer(self, name: str, delay: float, callback: Callable[[], None]) -> None:
        def guarded() -> None:
            if self._process.alive:
                callback()

        self._timers.set(name, delay, guarded)

    def cancel_timer(self, name: str) -> None:
        self._timers.cancel(name)


class DESCluster:
    """An ``n``-replica protocol deployment inside one simulator.

    Normally the cluster owns its :class:`Simulator`; a sharded runtime
    (:class:`repro.shard.ShardedCluster`) instead passes a shared ``sim``
    so many independent groups advance in one event loop, and a shared
    ``crypto`` service so G same-shape groups pay one key setup instead
    of G.  ``inbound_filter`` (``filter(replica_id, src, payload) ->
    payload | None``) screens deliveries before they reach a replica —
    the hook shard guards use to reject mis-routed commands; ``None``
    keeps the unfiltered fast path.  ``net_rng`` overrides the network's
    jitter RNG (sharded runs pass a per-group stream so groups decouple).
    """

    def __init__(
        self,
        experiment: ExperimentConfig,
        protocol: str = "marlin",
        crypto_mode: str = "threshold",
        rotation_interval: float | None = None,
        force_unhappy: bool = False,
        forward_requests: bool = True,
        use_cost_model: bool = True,
        observability: Any | None = None,
        pipeline: PipelineConfig | None = None,
        sim: Simulator | None = None,
        crypto: CryptoService | None = None,
        inbound_filter: Callable[[int, int, Any], Any] | None = None,
        net_rng: Any | None = None,
    ) -> None:
        if protocol not in PROTOCOLS:
            raise ConfigError(f"unknown protocol {protocol!r}; pick from {sorted(PROTOCOLS)}")
        self.experiment = experiment
        self.protocol = protocol
        #: Optional repro.obs.observer.RunObservability shared by the
        #: network (traffic counters) and every replica (metrics + spans).
        self.observability = observability
        cluster = experiment.cluster
        self.sim = sim if sim is not None else Simulator(seed=experiment.seed)
        self._inbound_filter = inbound_filter
        sizer = WireSizer()
        self.network = SimNetwork(
            self.sim,
            experiment.network,
            sizer,
            metrics=observability.net if observability is not None else None,
            rng=net_rng,
        )
        if crypto is None:
            crypto = self._make_crypto(crypto_mode, cluster.num_replicas, cluster.quorum)
        self.crypto = crypto
        if observability is not None:
            self.crypto.bind_metrics(observability.registry)
            sizer.bind_fallback_counter(
                observability.registry.counter(
                    "net_sizer_fallbacks_total",
                    "Payloads priced at the default size because no wire sizer matched",
                )
            )
        # The simulator must never see real threads: force the inline
        # verifier so determinism and the cost-model accounting hold.
        self.pipeline = pipeline.for_des() if pipeline is not None else None
        if use_cost_model:
            self.costs: ZeroCostModel = PaperCostModel(
                experiment.machine, scheme=self.crypto.scheme, quorum=cluster.quorum
            )
        else:
            self.costs = ZeroCostModel()
        self.auditor = CommitAuditor(cluster.total_replicas)

        self.processes: list[Process] = []
        self.replicas: list[Any] = []
        replica_cls = PROTOCOLS[protocol]
        for replica_id in range(cluster.total_replicas):
            process = Process(self.sim, f"replica-{replica_id}")
            ctx = DESContext(process, self.network, replica_id, cluster.total_replicas)
            if replica_id < cluster.num_replicas:
                kwargs: dict[str, Any] = dict(
                    replica_id=replica_id,
                    config=cluster,
                    ctx=ctx,
                    crypto=self.crypto,
                    costs=self.costs,
                    rotation_interval=rotation_interval,
                    forward_requests=forward_requests,
                    pipeline=self.pipeline,
                )
                if issubclass(replica_cls, MarlinReplica):
                    kwargs["force_unhappy"] = force_unhappy
                replica: Any = replica_cls(**kwargs)
            else:
                replica = LearnerReplica(replica_id, cluster, ctx, costs=self.costs)
            if observability is not None:
                replica.attach_observer(
                    observability.replica_obs(replica_id, replica.protocol_name)
                )
            replica.commit_listeners.append(self.auditor.listener_for(replica_id))
            self.processes.append(process)
            self.replicas.append(replica)
            self.network.register(replica_id, self._delivery_adapter(replica_id))

        online = getattr(observability, "auditor", None)
        if online is not None:
            online.configure(
                cluster.num_replicas,
                cluster.quorum,
                qc_validator=self.crypto.qc_is_valid,
            )
            self.network.add_tap(online.tap)
            for replica_id, replica in enumerate(self.replicas):
                replica.commit_listeners.append(
                    self._online_commit_listener(online, replica_id)
                )

    @staticmethod
    def _make_crypto(mode: str, num_replicas: int, quorum: int) -> CryptoService:
        if mode == "threshold":
            return ThresholdCryptoService(KeyRegistry(num_replicas, quorum))
        if mode == "multisig":
            return MultisigCryptoService(KeyRegistry(num_replicas, quorum))
        if mode == "null":
            return NullCryptoService(num_replicas, quorum)
        raise ConfigError(f"unknown crypto mode {mode!r}")

    @staticmethod
    def _online_commit_listener(online: Any, replica_id: int) -> Callable[[Any, float], None]:
        def listener(block: Any, when: float) -> None:
            online.on_commit_block(replica_id, block, when)

        return listener

    def _delivery_adapter(self, replica_id: int) -> Callable[[int, Any], None]:
        process = self.processes[replica_id]
        replica_ref = self.replicas
        inbound = self._inbound_filter
        if inbound is None:

            def deliver(src: int, payload: Any) -> None:
                # Processing waits for the CPU; the handler then charges more.
                process.run_after_cpu(
                    0.0, lambda: replica_ref[replica_id].on_message(src, payload)
                )

            return deliver

        def deliver_filtered(src: int, payload: Any) -> None:
            payload = inbound(replica_id, src, payload)
            if payload is None:
                return
            process.run_after_cpu(
                0.0, lambda: replica_ref[replica_id].on_message(src, payload)
            )

        return deliver_filtered

    # ------------------------------------------------------------- control

    def start(self) -> None:
        """Boot every replica at t=0."""
        for replica in self.replicas:
            self.sim.call_soon(replica.start)

    def run(self, until: float) -> None:
        self.sim.run(until=until)

    def run_until(
        self, predicate: Callable[[], bool], deadline: float, step: float = 0.05
    ) -> bool:
        """Advance simulated time until ``predicate()`` or ``deadline``."""
        while self.sim.now < deadline:
            if predicate():
                return True
            self.sim.run(until=min(self.sim.now + step, deadline))
        return predicate()

    def crash(self, replica_id: int) -> None:
        """Crash-stop a replica (it drops every future event)."""
        self.processes[replica_id].crash()

    def crash_at(self, replica_id: int, time: float) -> None:
        self.sim.schedule_at(time, lambda: self.crash(replica_id))

    # ------------------------------------------------------------ readouts

    @property
    def leader_replica(self) -> ReplicaBase:
        """The replica currently leading (per the highest cview seen)."""
        view = max(r.cview for r in self.replicas)
        return self.replicas[self.experiment.cluster.leader_of(max(view, 1))]

    def committed_heights(self) -> list[int]:
        return [r.ledger.committed_height for r in self.replicas]

    def total_ops_committed(self) -> int:
        return max(r.ledger.ops_committed for r in self.replicas)

    def assert_safety(self) -> None:
        """Raise if any two replicas committed conflicting blocks."""
        self.auditor.check()

    def commit_trace(self) -> list[list[Any]]:
        """The run's commit history as plain data.

        ``[[replica_id, height, digest, repr(when)], ...]`` in commit
        order — the canonical-encodable shape the parallel sweep workers
        and the shard determinism tests fingerprint for byte-identity.
        """
        return [
            [replica_id, height, digest, repr(when)]
            for replica_id, height, digest, when in self.auditor.commits
        ]


def add_commit_listener(
    cluster: DESCluster, listener: Callable[[int, Block, float], None]
) -> None:
    """Subscribe ``listener(replica_id, block, time)`` to every replica."""
    for replica in cluster.replicas:
        replica_id = replica.id

        def bound(block: Block, when: float, _rid: int = replica_id) -> None:
            listener(_rid, block, when)

        replica.commit_listeners.append(bound)
