"""The Table I complexity model, plus measured-authenticator accounting.

Table I of the paper compares the *view change* of HotStuff and its
two-phase descendants along four axes: communication, cryptographic
operations, authenticator complexity, and phase count.  This module
encodes those asymptotic rows (so the Table I benchmark can print them
next to measured numbers) and provides :func:`authenticators_in`, the
counting rule of Section III:

* a partial signature, signature, or combined threshold signature is one
  authenticator;
* an aggregate signature over ``t`` *different* messages counts as ``t``
  authenticators (the Wendy caveat) — our protocols never ship one, so
  every QC here counts as one under the threshold instantiation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.consensus.messages import (
    AggregateNewView,
    PhaseMsg,
    PrePrepareMsg,
    SyncRequest,
    SyncResponse,
    ViewChangeMsg,
    VoteMsg,
)


@dataclass(frozen=True)
class ComplexityRow:
    """One protocol's asymptotic view-change costs (Table I)."""

    protocol: str
    vc_communication: str
    vc_crypto_ops: str
    vc_authenticators: str
    vc_phases: str
    linear: bool


TABLE_I: list[ComplexityRow] = [
    ComplexityRow(
        protocol="HotStuff",
        vc_communication="O(n*lambda + n*log u)",
        vc_crypto_ops="O(n^2) non-pairing or O(n) pairing",
        vc_authenticators="O(n)",
        vc_phases="3",
        linear=True,
    ),
    ComplexityRow(
        protocol="Fast-HotStuff",
        vc_communication="O(n^2*lambda + n^2*log u)",
        vc_crypto_ops="O(n^3) non-pairing or O(n^2) pairing",
        vc_authenticators="O(n^2)",
        vc_phases="2",
        linear=False,
    ),
    ComplexityRow(
        protocol="Jolteon",
        vc_communication="O(n^2*lambda + n^2*log u)",
        vc_crypto_ops="O(n^3) non-pairing or O(n^2) pairing",
        vc_authenticators="O(n^2)",
        vc_phases="2",
        linear=False,
    ),
    ComplexityRow(
        protocol="Wendy",
        vc_communication="O(n*lambda + n^2*log u)",
        vc_crypto_ops="O(n^2 log c) non-pairing and O(n) pairing",
        vc_authenticators="O(n^2)",
        vc_phases="2 or 3",
        linear=False,
    ),
    ComplexityRow(
        protocol="Marlin",
        vc_communication="O(n*lambda + n*log u)",
        vc_crypto_ops="O(n^2) non-pairing or O(n) pairing",
        vc_authenticators="O(n)",
        vc_phases="2 or 3",
        linear=True,
    ),
]


def authenticators_in(payload: Any) -> int:
    """Authenticators carried by one protocol message (threshold scheme).

    Per Section III's counting rules: each QC (a combined threshold
    signature or the genesis sentinel) is one authenticator; each partial
    signature is one.
    """
    if isinstance(payload, VoteMsg):
        return 1 + (1 if payload.locked_qc is not None else 0)
    if isinstance(payload, PhaseMsg):
        return len(payload.justify.qcs())
    if isinstance(payload, PrePrepareMsg):
        total = 0
        seen: set[bytes] = set()
        for proposal in payload.proposals:
            for qc in proposal.justify.qcs():
                if qc.digest not in seen:
                    seen.add(qc.digest)
                    total += 1
        return total
    if isinstance(payload, ViewChangeMsg):
        total = 1 if payload.share is not None else 0
        if payload.justify is not None:
            total += len(payload.justify.qcs())
        return total
    if isinstance(payload, AggregateNewView):
        # The quadratic case: every embedded VIEW-CHANGE message carries
        # its own share and justify, all verified by every recipient.
        total = len(payload.justify.qcs())
        for _, proof in payload.proofs:
            total += authenticators_in(proof)
        return total
    if isinstance(payload, (SyncRequest, SyncResponse)):
        return 0
    return 0


def expected_view_change_messages(protocol: str, n: int, happy: bool) -> tuple[int, int]:
    """(lower, upper) expected message counts for one view change.

    Counts from the first VIEW-CHANGE send to the first DECIDE delivery,
    assuming a correct new leader and no further faults.  Used by tests to
    pin the *linearity* claim: the measured count must be Theta(n).

    Marlin happy:    n VC + n COMMIT + n votes + n DECIDE            ~ 4n
    Marlin unhappy:  n VC + n PRE-PREPARE + n ppvotes + n PREPARE +
                     n pvotes + n COMMIT + n cvotes + n DECIDE        ~ 8n
    HotStuff:        n NEW-VIEW + 4 phases * n + 3 vote rounds * n    ~ 8n

    Bounds are generous (a handful of in-flight pre-crash messages and
    one pipelined proposal land inside the measurement window) but still
    rule out quadratic behaviour at the sizes the tests scale to.
    """
    if protocol == "marlin" and happy:
        low, high = 2 * n, 8 * n
    elif protocol == "marlin":
        low, high = 5 * n, 11 * n
    elif protocol == "hotstuff":
        low, high = 5 * n, 11 * n
    else:
        raise ValueError(f"no expectation for protocol {protocol!r}")
    return low, high
