"""Process model: a simulated machine with a busy CPU.

A :class:`Process` wraps a simulator handle and models a single-threaded
CPU: work charged with :meth:`charge` extends the time at which the
process can next act, and :meth:`run_after_cpu` schedules a callback for
when both a delay has elapsed *and* the CPU is free.  This is how the DES
reproduces the paper's observation that crypto and database work — not
just network hops — bound throughput.

Crashing a process makes it drop all future callbacks, which is exactly
the crash-failure model of the paper's view-change and rotating-leader
experiments.
"""

from __future__ import annotations

from typing import Callable

from repro.des.simulator import Simulator


class Process:
    """One simulated machine: an id, a CPU, and an alive flag."""

    def __init__(self, sim: Simulator, name: str) -> None:
        self._sim = sim
        self._name = name
        self._cpu_free_at = 0.0
        self._alive = True
        self._cpu_busy_total = 0.0

    @property
    def sim(self) -> Simulator:
        return self._sim

    @property
    def name(self) -> str:
        return self._name

    @property
    def alive(self) -> bool:
        return self._alive

    @property
    def cpu_busy_total(self) -> float:
        """Total CPU seconds this process has consumed."""
        return self._cpu_busy_total

    @property
    def cpu_free_at(self) -> float:
        """Absolute time at which all charged CPU work completes."""
        return max(self._cpu_free_at, self._sim.now)

    @property
    def now(self) -> float:
        return self._sim.now

    def crash(self) -> None:
        """Crash-stop: every subsequently firing callback becomes a no-op."""
        self._alive = False

    def recover(self) -> None:
        """Bring a crashed process back (used by churn experiments)."""
        self._alive = True
        self._cpu_free_at = max(self._cpu_free_at, self._sim.now)

    def charge(self, cpu_seconds: float) -> float:
        """Consume CPU time; returns the absolute time the work finishes.

        Work is serialised: if the CPU is already busy until T, new work
        occupies [T, T + cpu_seconds].
        """
        if cpu_seconds < 0:
            raise ValueError(f"cpu_seconds cannot be negative: {cpu_seconds}")
        start = max(self._cpu_free_at, self._sim.now)
        self._cpu_free_at = start + cpu_seconds
        self._cpu_busy_total += cpu_seconds
        return self._cpu_free_at

    def run_after_cpu(self, cpu_seconds: float, callback: Callable[[], None], label: str = "") -> None:
        """Charge CPU work and run ``callback`` when it completes (if alive)."""
        done_at = self.charge(cpu_seconds)
        self._sim.schedule_at(done_at, self._guard(callback), label=label or f"{self._name}:cpu")

    def run_at(self, time: float, callback: Callable[[], None], label: str = "") -> None:
        """Run ``callback`` at absolute simulated ``time`` if still alive."""
        self._sim.schedule_at(time, self._guard(callback), label=label or self._name)

    def run_after(self, delay: float, callback: Callable[[], None], label: str = "") -> None:
        """Run ``callback`` after ``delay`` seconds if still alive."""
        self._sim.schedule(delay, self._guard(callback), label=label or self._name)

    def _guard(self, callback: Callable[[], None]) -> Callable[[], None]:
        def guarded() -> None:
            if self._alive:
                callback()

        return guarded
