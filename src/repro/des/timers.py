"""Named, restartable timers on top of the simulator.

BFT pacemakers constantly arm, reset and cancel view timers; a
:class:`TimerWheel` gives each logical timer a name and handles the
cancel-and-rearm choreography so protocol code stays declarative.
"""

from __future__ import annotations

from typing import Callable

from repro.des.simulator import Event, Simulator


class Timer:
    """A single restartable timer bound to a simulator."""

    def __init__(self, sim: Simulator, callback: Callable[[], None], label: str = "timer") -> None:
        self._sim = sim
        self._callback = callback
        self._label = label
        self._event: Event | None = None

    @property
    def armed(self) -> bool:
        return self._event is not None and not self._event.cancelled

    def start(self, delay: float) -> None:
        """(Re)arm the timer to fire ``delay`` seconds from now."""
        self.cancel()
        self._event = self._sim.schedule(delay, self._fire, label=self._label)

    def cancel(self) -> None:
        """Disarm without firing; safe to call when not armed."""
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _fire(self) -> None:
        self._event = None
        self._callback()


class TimerWheel:
    """A set of named timers sharing one simulator."""

    def __init__(self, sim: Simulator) -> None:
        self._sim = sim
        self._timers: dict[str, Timer] = {}

    def set(self, name: str, delay: float, callback: Callable[[], None]) -> None:
        """Arm (or rearm) the timer ``name`` to run ``callback`` later."""
        timer = self._timers.get(name)
        if timer is None:
            timer = Timer(self._sim, callback, label=name)
            self._timers[name] = timer
        else:
            timer._callback = callback
        timer.start(delay)

    def cancel(self, name: str) -> None:
        timer = self._timers.get(name)
        if timer is not None:
            timer.cancel()

    def cancel_all(self) -> None:
        for timer in self._timers.values():
            timer.cancel()

    def is_armed(self, name: str) -> bool:
        timer = self._timers.get(name)
        return timer is not None and timer.armed
