"""The discrete-event simulator core.

A :class:`Simulator` owns a priority queue of :class:`Event` objects,
ordered by (time, sequence).  The sequence number makes ordering total and
deterministic: two events scheduled for the same instant fire in the order
they were scheduled, on every run.

Events carry an arbitrary zero-argument callback.  Cancellation is
tombstone-based (O(1)); cancelled events are skipped when popped.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field
from typing import Callable

from repro.common.errors import ReproError


class SimulationError(ReproError):
    """The simulation reached an invalid state (e.g. time went backwards)."""


@dataclass(order=True)
class Event:
    """One scheduled callback; orderable by (time, seq)."""

    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    label: str = field(default="", compare=False)

    def cancel(self) -> None:
        """Mark the event so the simulator skips it; idempotent."""
        self.cancelled = True


class Simulator:
    """A deterministic discrete-event scheduler.

    Typical use::

        sim = Simulator(seed=7)
        sim.schedule(1.0, lambda: print(sim.now))
        sim.run(until=10.0)
    """

    def __init__(self, seed: int = 0) -> None:
        self._now = 0.0
        self._seq = 0
        self._queue: list[Event] = []
        self._rng = random.Random(seed)
        self._events_processed = 0
        self._running = False

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def rng(self) -> random.Random:
        """The simulation-wide seeded RNG; use for all randomness."""
        return self._rng

    @property
    def events_processed(self) -> int:
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of queued (possibly cancelled) events."""
        return len(self._queue)

    def schedule(self, delay: float, callback: Callable[[], None], label: str = "") -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        event = Event(time=self._now + delay, seq=self._seq, callback=callback, label=label)
        self._seq += 1
        heapq.heappush(self._queue, event)
        return event

    def schedule_at(self, time: float, callback: Callable[[], None], label: str = "") -> Event:
        """Schedule ``callback`` at absolute simulated ``time``."""
        return self.schedule(time - self._now, callback, label)

    def call_soon(self, callback: Callable[[], None], label: str = "") -> Event:
        """Schedule ``callback`` at the current instant (after queued peers)."""
        return self.schedule(0.0, callback, label)

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Process events until the queue drains or a bound is hit.

        ``until`` bounds simulated time (events later than it stay queued
        and time stops exactly at ``until``); ``max_events`` bounds work,
        protecting against accidental event storms.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        try:
            processed_this_run = 0
            while self._queue:
                if max_events is not None and processed_this_run >= max_events:
                    break
                event = self._queue[0]
                if event.cancelled:
                    heapq.heappop(self._queue)
                    continue
                if until is not None and event.time > until:
                    self._now = until
                    return
                heapq.heappop(self._queue)
                if event.time < self._now:
                    raise SimulationError(
                        f"event at t={event.time} popped after clock reached {self._now}"
                    )
                self._now = event.time
                event.callback()
                self._events_processed += 1
                processed_this_run += 1
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False

    def step(self) -> bool:
        """Process exactly one (non-cancelled) event; False if queue empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            event.callback()
            self._events_processed += 1
            return True
        return False
