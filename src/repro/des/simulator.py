"""The discrete-event simulator core.

A :class:`Simulator` owns a priority queue of scheduled callbacks ordered
by (time, sequence).  The sequence number makes ordering total and
deterministic: two events scheduled for the same instant fire in the order
they were scheduled, on every run.

Hot-path design: the heap holds plain ``(time, seq, event)`` tuples, so
every sift comparison during push/pop is a C-level tuple compare on a
float and an int — the sequence number is unique, so the :class:`Event`
handle in the third slot is never compared.  The handle itself is a
``__slots__`` object that exists only to support O(1) tombstone
cancellation; cancelled events are skipped when popped.

Tombstones are cheap individually but a mass cancel (a view-change storm
rearming thousands of timers at once) can leave the heap mostly dead
weight, and every push/pop then sifts past entries that will never fire.
The simulator therefore counts live tombstones and compacts the heap in
place once more than half of a non-trivial queue is cancelled, which
bounds ``pending`` at roughly twice the live event count.
"""

from __future__ import annotations

import random
from heapq import heapify, heappop, heappush
from typing import Callable

from repro.common.errors import ReproError

#: Queues smaller than this are never compacted: rebuilding a tiny heap
#: costs more than sifting past its tombstones.
_COMPACT_MIN = 256


class SimulationError(ReproError):
    """The simulation reached an invalid state (e.g. time went backwards)."""


class Event:
    """Cancel handle for one scheduled callback."""

    __slots__ = ("time", "seq", "callback", "cancelled", "label", "owner")

    def __init__(self, time: float, seq: int, callback: Callable[[], None], label: str = "") -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        self.label = label
        self.owner: "Simulator | None" = None

    def cancel(self) -> None:
        """Mark the event so the simulator skips it; idempotent."""
        if self.cancelled:
            return
        self.cancelled = True
        owner = self.owner
        if owner is not None:
            owner._note_cancelled()

    def __repr__(self) -> str:
        state = " cancelled" if self.cancelled else ""
        return f"Event(t={self.time}, seq={self.seq}, {self.label!r}{state})"


class Simulator:
    """A deterministic discrete-event scheduler.

    Typical use::

        sim = Simulator(seed=7)
        sim.schedule(1.0, lambda: print(sim.now))
        sim.run(until=10.0)
    """

    def __init__(self, seed: int = 0) -> None:
        self._now = 0.0
        self._seq = 0
        self._queue: list[tuple[float, int, Event]] = []
        self._rng = random.Random(seed)
        self._events_processed = 0
        self._running = False
        self._cancelled = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def rng(self) -> random.Random:
        """The simulation-wide seeded RNG; use for all randomness."""
        return self._rng

    @property
    def events_processed(self) -> int:
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of queued (possibly cancelled) events."""
        return len(self._queue)

    def credit_events(self, count: int) -> None:
        """Credit ``count`` logical events beyond the heap pops.

        The network's batched delivery collapses same-instant deliveries
        on one link into a single heap event; it credits the remainder
        here so :attr:`events_processed` keeps counting deliveries
        individually, independent of how they were scheduled.
        """
        self._events_processed += count

    def _note_cancelled(self) -> None:
        # Called by Event.cancel().  Compact once tombstones dominate a
        # non-trivial queue; in-place (slice assignment + heapify) so the
        # local alias held by a running run() loop stays valid.
        self._cancelled += 1
        if self._cancelled >= _COMPACT_MIN and self._cancelled * 2 > len(self._queue):
            self._queue[:] = [entry for entry in self._queue if not entry[2].cancelled]
            heapify(self._queue)
            self._cancelled = 0

    def schedule(self, delay: float, callback: Callable[[], None], label: str = "") -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        time = self._now + delay
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, seq, callback, label)
        event.owner = self
        heappush(self._queue, (time, seq, event))
        return event

    def schedule_at(self, time: float, callback: Callable[[], None], label: str = "") -> Event:
        """Schedule ``callback`` at absolute simulated ``time``."""
        return self.schedule(time - self._now, callback, label)

    def call_soon(self, callback: Callable[[], None], label: str = "") -> Event:
        """Schedule ``callback`` at the current instant (after queued peers)."""
        return self.schedule(0.0, callback, label)

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Process events until the queue drains or a bound is hit.

        ``until`` bounds simulated time (events later than it stay queued
        and time stops exactly at ``until``); ``max_events`` bounds work,
        protecting against accidental event storms.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        queue = self._queue
        try:
            processed_this_run = 0
            while queue:
                if max_events is not None and processed_this_run >= max_events:
                    break
                time, _, event = queue[0]
                if event.cancelled:
                    heappop(queue)
                    if self._cancelled > 0:
                        self._cancelled -= 1
                    continue
                if until is not None and time > until:
                    self._now = until
                    return
                heappop(queue)
                if time < self._now:
                    raise SimulationError(
                        f"event at t={time} popped after clock reached {self._now}"
                    )
                self._now = time
                event.callback()
                self._events_processed += 1
                processed_this_run += 1
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False

    def step(self) -> bool:
        """Process exactly one (non-cancelled) event; False if queue empty.

        Enforces the same monotonic-clock invariant as :meth:`run`: a
        popped event earlier than the current clock raises
        :class:`SimulationError` instead of silently rewinding time.
        """
        while self._queue:
            time, _, event = heappop(self._queue)
            if event.cancelled:
                if self._cancelled > 0:
                    self._cancelled -= 1
                continue
            if time < self._now:
                raise SimulationError(
                    f"event at t={time} popped after clock reached {self._now}"
                )
            self._now = time
            event.callback()
            self._events_processed += 1
            return True
        return False
