"""Deterministic discrete-event simulation (DES) substrate.

The paper's evaluation ran on a 40-machine testbed.  We reproduce its
figures with a discrete-event simulator: replicas are
:class:`~repro.des.process.Process` objects, messages and timers are
events on a global priority queue, and simulated time advances in jumps.
Determinism (a seeded RNG, stable tie-breaking by sequence number) makes
every experiment exactly reproducible.
"""

from repro.des.simulator import Event, Simulator
from repro.des.process import Process
from repro.des.timers import Timer, TimerWheel

__all__ = [
    "Event",
    "ParallelShardedCluster",
    "Process",
    "Simulator",
    "Timer",
    "TimerWheel",
]


def __getattr__(name: str):
    # Lazy: repro.des.parallel pulls in the harness layer (which itself
    # imports this package), so exporting it eagerly would be a cycle.
    if name == "ParallelShardedCluster":
        from repro.des.parallel import ParallelShardedCluster

        return ParallelShardedCluster
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
