"""Process-parallel sharded simulation with a deterministic lookahead merge.

PR 7's :class:`~repro.shard.ShardedCluster` advances all G consensus
groups in ONE simulator, so a sharded run — the shape that demonstrates
Marlin's linearity at scale — gets zero multi-core benefit.  This module
runs each group's :class:`~repro.des.simulator.Simulator` in its own
spawn worker process and advances them in conservative lookahead windows
(Chandy-Misra): every worker may freely simulate to ``t + L``, where
``L`` is the minimum cross-shard latency, because no event from another
shard can arrive sooner.  At each window barrier the parent collects the
workers' outbound cross-shard events, merges them in canonical
``(time, shard, seq)`` order, and hands each worker its inbox for the
next window.

Determinism is the load-bearing property: a parallel run is
**byte-identical** to the serial :class:`~repro.shard.ShardedCluster` —
same per-group event counts, same commit-trace SHAs, same
``journeys_blob``.  Three facts make that possible:

* groups never exchange simulator events in the PR 7 topology (client
  routing is resolved before injection and each group owns a private
  :class:`~repro.network.simnet.SimNetwork`), so the only runtime
  coupling in the serial engine was the *shared jitter RNG* — removed by
  giving every group its own :func:`~repro.network.simnet.shard_net_rng`
  stream in both engines;
* the crypto service is a pure function of the cluster shape (the key
  registry is seeded), so each worker rebuilds an identical service
  instead of sharing one;
* every read-out that crosses groups (commit trace, journeys, merged
  latency samples, metrics registries) is assembled in shard order from
  per-group pieces, exactly as the serial engine does.

One telemetry caveat: the ``crypto_qc_cache_*`` counters describe the
engine, not the simulation — serial runs share one QC-verification cache
across all groups (an amortisation the parallel engine cannot reproduce
without sharing memory), so those counters' hit/miss split differs
between engines while their sum, and every simulation read-out, matches.

The cross-shard event bus is real plumbing — events emitted via
:meth:`GroupPort.emit` travel through the barrier merge and are applied
by a handler resolved from a dotted name — but the standard sharded
workload has no cross-shard edges, so its effective lookahead is
infinite and the whole run is one window.  Pass an explicit
``lookahead`` to force barriers (the equivalence tests do, proving the
windowed path changes nothing).

Speedup requires multi-core hardware: on a single core the workers time-
slice and the barrier overhead is pure cost.  See EXPERIMENTS.md
("Parallel DES") for the measured numbers and the framing of the >=2x
multi-core claim.
"""

from __future__ import annotations

import importlib
import multiprocessing
from dataclasses import dataclass, field
from functools import partial
from typing import Any, Callable

from repro.common.config import ExperimentConfig
from repro.common.errors import ConfigError, ReproError
from repro.des.simulator import Simulator
from repro.harness.des_runtime import DESCluster
from repro.network.simnet import shard_net_rng
from repro.shard.config import ShardConfig

__all__ = [
    "GroupPort",
    "ParallelShardedCluster",
    "parallel_sharded_load_point",
]

#: Floor for the auto-derived lookahead window, guarding against a
#: zero-latency network profile producing zero-width windows.
_MIN_LOOKAHEAD = 1e-3


class ParallelSimulationError(ReproError):
    """The parallel engine detected a broken invariant (worker crash,
    lookahead violation, or a cross-shard event into the past)."""


# ---------------------------------------------------------------------------
# Worker-side machinery.  Everything below _WorkerSpec runs inside the
# spawn worker for jobs > 1, and inline (same code path) for jobs == 1.


@dataclass
class _WorkerSpec:
    """Everything one worker needs to rebuild its groups; must pickle."""

    experiment: ExperimentConfig
    shard: ShardConfig
    protocol: str
    crypto_mode: str
    pipeline: Any | None
    #: Shard ids hosted by this worker, ascending.
    shard_ids: tuple[int, ...]
    #: Per-hosted-shard client token ids (aligned with ``shard_ids``).
    client_ids: tuple[tuple[int, ...], ...]
    token_weight: int
    request_size: int | None
    reply_size: int | None
    target: str
    warmup: float
    mode: str
    client_config: Any | None
    start_at: float
    journey_seed: int
    journey_rate: float
    audit: bool
    metrics: bool
    bus_handler: str | None
    lookahead: float | None


class GroupPort:
    """A bus handler's view of one hosted group.

    Handlers receive the port plus ``(src_shard, payload)``; they may
    inspect the group's cluster and :meth:`emit` further cross-shard
    events, which travel through the next window barrier.
    """

    def __init__(self, host: "_WorkerHost", group: Any) -> None:
        self._host = host
        self.group = group
        self.shard_id = group.shard_id

    @property
    def sim(self) -> Simulator:
        return self.group.cluster.sim

    @property
    def cluster(self) -> DESCluster:
        return self.group.cluster

    def emit(self, dst_shard: int, payload: Any, delay: float = 0.0) -> None:
        """Send ``payload`` to ``dst_shard``'s handler on the bus.

        Arrival is ``now + max(delay, lookahead)`` — the conservative
        window contract: no cross-shard event may arrive sooner than one
        lookahead after it was sent, which is exactly what lets every
        worker simulate a full window without hearing from its peers.
        """
        self._host.emit(self.shard_id, dst_shard, payload, delay)


def _resolve_handler(dotted: str) -> Callable[..., None]:
    """Import ``module:function`` (or ``module.function``) to a callable."""
    if ":" in dotted:
        module_name, attr = dotted.split(":", 1)
    else:
        module_name, _, attr = dotted.rpartition(".")
    if not module_name:
        raise ConfigError(f"bus handler {dotted!r} is not a dotted path")
    module = importlib.import_module(module_name)
    handler = getattr(module, attr, None)
    if not callable(handler):
        raise ConfigError(f"bus handler {dotted!r} did not resolve to a callable")
    return handler


class _WorkerHost:
    """Hosts one worker's groups: builds them, advances them window by
    window, and packages the per-group results at teardown."""

    def __init__(self, spec: _WorkerSpec) -> None:
        from repro.harness.workload import ClosedLoopClients
        from repro.obs.journey import JourneyRecorder
        from repro.obs.observer import RunObservability
        from repro.shard.cluster import ShardGroup, make_misroute_guard

        self.spec = spec
        experiment = spec.experiment
        cluster_cfg = experiment.cluster
        router = spec.shard.make_router()
        # One crypto service per worker, shared by its groups: the key
        # registry is a pure function of (n, quorum, seed), so every
        # worker's copy is identical to the serial engine's single one.
        crypto = DESCluster._make_crypto(
            spec.crypto_mode, cluster_cfg.num_replicas, cluster_cfg.quorum
        )
        journey = (
            JourneyRecorder(spec.journey_seed, spec.journey_rate)
            if spec.journey_rate > 0.0
            else None
        )
        if journey is not None and not journey.enabled:
            journey = None
        self.journey = journey
        self.groups: list[Any] = []
        self.pools: dict[int, Any] = {}
        self.ports: dict[int, GroupPort] = {}
        self._outbox: list[tuple[float, int, int, int, Any]] = []
        self._emit_seq: dict[int, int] = {}
        self._handler = (
            _resolve_handler(spec.bus_handler) if spec.bus_handler else None
        )
        for shard_id, sub_ids in zip(spec.shard_ids, spec.client_ids):
            sim = Simulator(seed=experiment.seed)
            observability = (
                RunObservability(
                    trace=False,
                    metrics=spec.metrics,
                    audit=spec.audit,
                    journey=journey,
                )
                if spec.audit or spec.metrics or journey is not None
                else None
            )
            group = ShardGroup(shard_id=shard_id, cluster=None)  # type: ignore[arg-type]
            group.cluster = DESCluster(
                experiment,
                protocol=spec.protocol,
                crypto_mode=spec.crypto_mode,
                observability=observability,
                pipeline=spec.pipeline,
                sim=sim,
                crypto=crypto,
                inbound_filter=(
                    make_misroute_guard(router, shard_id, group)
                    if spec.shard.reject_misrouted
                    else None
                ),
                net_rng=shard_net_rng(experiment.seed, shard_id),
            )
            group.observability = observability
            pool = None
            if sub_ids:
                pool = ClosedLoopClients(
                    group.cluster,
                    num_clients=len(sub_ids) * spec.token_weight,
                    request_size=spec.request_size,
                    reply_size=spec.reply_size,
                    token_weight=spec.token_weight,
                    target=spec.target,
                    warmup=spec.warmup,
                    mode=spec.mode,
                    client_config=spec.client_config,
                    client_ids=list(sub_ids),
                    shard=shard_id,
                )
            group.cluster.start()
            if pool is not None:
                sim.schedule_at(spec.start_at, pool.start)
            self.groups.append(group)
            self.pools[shard_id] = pool
            self.ports[shard_id] = GroupPort(self, group)
            self._emit_seq[shard_id] = 0

    # ------------------------------------------------------------- the bus

    def emit(self, src_shard: int, dst_shard: int, payload: Any, delay: float) -> None:
        if self._handler is None:
            raise ConfigError(
                "cross-shard emit without a bus handler; pass bus_handler= "
                "to ParallelShardedCluster"
            )
        lookahead = self.spec.lookahead
        if lookahead is None:
            raise ConfigError("cross-shard emit requires a finite lookahead")
        if delay < lookahead:
            delay = lookahead
        sim = self.ports[src_shard].sim
        seq = self._emit_seq[src_shard]
        self._emit_seq[src_shard] = seq + 1
        self._outbox.append((sim.now + delay, src_shard, seq, dst_shard, payload))

    def _apply(self, port: GroupPort, src_shard: int, payload: Any) -> None:
        handler = self._handler
        if handler is not None:
            handler(port, src_shard, payload)

    # ------------------------------------------------------------- control

    def advance(
        self, until: float, inbox: list[tuple[float, int, int, int, Any]]
    ) -> list[tuple[float, int, int, int, Any]]:
        """Inject ``inbox``, run every hosted group to ``until``, and
        return the cross-shard events emitted during the window."""
        for arrival, src_shard, _seq, dst_shard, payload in inbox:
            port = self.ports[dst_shard]
            if arrival < port.sim.now:
                raise ParallelSimulationError(
                    f"cross-shard event at t={arrival} arrived after shard "
                    f"{dst_shard} reached t={port.sim.now}: lookahead violated"
                )
            port.sim.schedule_at(
                arrival, partial(self._apply, port, src_shard, payload), "xshard"
            )
        for group in self.groups:
            group.cluster.sim.run(until=until)
        out = self._outbox
        self._outbox = []
        return out

    def finish(self) -> dict[str, Any]:
        """Safety-check every group and package its read-outs."""
        spec = self.spec
        groups: list[dict[str, Any]] = []
        for group in self.groups:
            group.cluster.assert_safety()
            pool = self.pools[group.shard_id]
            observability = group.observability
            groups.append(
                {
                    "shard": group.shard_id,
                    "events": group.cluster.sim.events_processed,
                    "commit_trace": group.cluster.commit_trace(),
                    "blocks": max(
                        replica.stats["blocks_committed"]
                        for replica in group.cluster.replicas
                    ),
                    "ops": group.cluster.total_ops_committed(),
                    "misrouted_ops": group.misrouted_ops,
                    "misrouted_messages": group.misrouted_messages,
                    "num_clients": pool.num_clients if pool is not None else 0,
                    "pool_ops": pool.throughput.ops if pool is not None else 0,
                    "latency_samples": (
                        list(pool.latency.samples) if pool is not None else []
                    ),
                    "audit_report": (
                        observability.audit_report()
                        if spec.audit and observability is not None
                        else None
                    ),
                    "registry": (
                        observability.registry
                        if spec.metrics and observability is not None
                        else None
                    ),
                }
            )
        return {
            "groups": groups,
            "journey_events": (
                dict(self.journey._events) if self.journey is not None else {}
            ),
        }


def _worker_main(conn: Any, spec: _WorkerSpec) -> None:
    """Spawn-worker entry point: serve barrier requests over the pipe."""
    try:
        host = _WorkerHost(spec)
        while True:
            message = conn.recv()
            op = message[0]
            if op == "advance":
                conn.send(("ok", host.advance(message[1], message[2])))
            elif op == "finish":
                conn.send(("result", host.finish()))
            elif op == "exit":
                break
            else:  # pragma: no cover - protocol bug
                raise ParallelSimulationError(f"unknown op {op!r}")
    except Exception:
        import traceback

        try:
            conn.send(("error", traceback.format_exc()))
        except (BrokenPipeError, OSError):  # pragma: no cover
            pass
    finally:
        conn.close()


class _LocalConn:
    """In-process stand-in for a worker pipe (the ``jobs == 1`` path).

    Runs the identical :class:`_WorkerHost` code, so the decomposed
    engine computes the same answer whether or not processes are used.
    """

    def __init__(self, spec: _WorkerSpec) -> None:
        self._host = _WorkerHost(spec)
        self._replies: list[tuple[str, Any]] = []

    def send(self, message: tuple) -> None:
        op = message[0]
        if op == "advance":
            self._replies.append(("ok", self._host.advance(message[1], message[2])))
        elif op == "finish":
            self._replies.append(("result", self._host.finish()))
        elif op == "exit":
            pass
        else:  # pragma: no cover - protocol bug
            raise ParallelSimulationError(f"unknown op {op!r}")

    def recv(self) -> tuple[str, Any]:
        return self._replies.pop(0)

    def close(self) -> None:
        pass


# ---------------------------------------------------------------------------
# Parent-side engine


@dataclass
class GroupResult:
    """Read-outs of one consensus group after a parallel run."""

    shard_id: int
    events_processed: int
    commit_trace: list[list[Any]]
    blocks_committed: int
    ops_committed: int
    misrouted_ops: int
    misrouted_messages: int
    num_clients: int
    pool_ops: int
    latency_samples: list[tuple[float, float, int]]
    audit_report: dict[str, Any] | None = None
    registry: Any | None = field(default=None, repr=False)


class ParallelShardedCluster:
    """G independent consensus groups across ``jobs`` worker processes.

    Construction mirrors :class:`~repro.shard.ShardedCluster`; the run
    itself happens in :meth:`run_workload`, because worker processes
    cannot be handed live callbacks — the workload shape ships to them
    as data and the groups are built worker-side.  After the run the
    instance holds per-group :class:`GroupResult` records and offers the
    same read-outs as the serial engine (``commit_trace``,
    ``metrics_snapshot``, ``audit_reports``, ...), assembled in shard
    order so they are byte-identical to a serial run.

    ``jobs == 1`` hosts every group in-process through the same code
    path (no pickling), which is the reference the equivalence tests
    compare ``jobs == 4`` against.
    """

    def __init__(
        self,
        experiment: ExperimentConfig,
        shard: ShardConfig | None = None,
        protocol: str = "marlin",
        crypto_mode: str = "null",
        pipeline: Any | None = None,
        jobs: int = 1,
        lookahead: float | None = None,
        journey: Any | None = None,
        audit: bool = False,
        metrics: bool = False,
        bus_handler: str | None = None,
        bus_seed: tuple[tuple[float, int, int, Any], ...] = (),
    ) -> None:
        self.experiment = experiment
        self.shard = shard if shard is not None else ShardConfig()
        if self.shard.shards < 2:
            raise ConfigError(
                "the parallel engine decomposes per consensus group; "
                "shard.shards must be >= 2 (an unsharded run has nothing "
                "to parallelise)"
            )
        if jobs < 1:
            raise ConfigError(f"des_jobs must be >= 1, got {jobs}")
        if lookahead is not None and lookahead <= 0:
            raise ConfigError(f"lookahead must be positive, got {lookahead}")
        self.protocol = protocol
        self.crypto_mode = crypto_mode
        self.pipeline = pipeline
        self.jobs = min(jobs, self.shard.shards)
        self.journey = journey if journey is not None and journey.enabled else None
        self.audit = audit
        self.metrics = metrics
        self.bus_handler = bus_handler
        self.bus_seed = tuple(bus_seed)
        if self.bus_seed and bus_handler is None:
            raise ConfigError("bus_seed without a bus_handler would never be applied")
        self.router = self.shard.make_router()
        self.lookahead = lookahead
        if lookahead is None and bus_handler is not None:
            # Conservative default: the minimum cross-shard latency is
            # one network hop in this topology.
            self.lookahead = max(
                experiment.network.one_way_latency, _MIN_LOOKAHEAD
            )
        self.group_results: list[GroupResult] = []
        self.windows_run = 0
        self._finished = False

    # ------------------------------------------------------------- running

    def run_workload(
        self,
        num_clients: int,
        sim_time: float,
        request_size: int | None = None,
        reply_size: int | None = None,
        token_weight: int = 1,
        target: str = "leader",
        warmup: float = 0.0,
        mode: str = "hub",
        client_config: Any | None = None,
        start_at: float = 0.01,
    ) -> None:
        """Run the standard sharded closed-loop workload to ``sim_time``.

        Client partitioning matches
        :class:`~repro.harness.workload.ShardedClosedLoopClients` token
        for token: global ids start at ``num_replicas + 1`` and the
        shared router assigns each to exactly one group.
        """
        if self._finished:
            raise ConfigError("this engine already ran; build a fresh one")
        if num_clients < 1:
            raise ConfigError("need at least one client")
        if token_weight < 1:
            raise ConfigError("token_weight must be >= 1")
        num_replicas = self.experiment.cluster.num_replicas
        num_tokens = max(1, num_clients // token_weight)
        base = num_replicas + 1
        client_ids = [base + i for i in range(num_tokens)]
        partition = self.router.partition_clients(client_ids)
        self.num_clients = num_clients

        jobs = self.jobs
        assignments: list[list[int]] = [[] for _ in range(jobs)]
        for shard_id in range(self.shard.shards):
            assignments[shard_id % jobs].append(shard_id)
        specs = [
            _WorkerSpec(
                experiment=self.experiment,
                shard=self.shard,
                protocol=self.protocol,
                crypto_mode=self.crypto_mode,
                pipeline=self.pipeline,
                shard_ids=tuple(hosted),
                client_ids=tuple(tuple(partition[gid]) for gid in hosted),
                token_weight=token_weight,
                request_size=request_size,
                reply_size=reply_size,
                target=target,
                warmup=warmup,
                mode=mode,
                client_config=client_config,
                start_at=start_at,
                journey_seed=self.journey.seed if self.journey is not None else 0,
                journey_rate=self.journey.rate if self.journey is not None else 0.0,
                audit=self.audit,
                metrics=self.metrics,
                bus_handler=self.bus_handler,
                lookahead=self.lookahead,
            )
            for hosted in assignments
        ]
        shard_to_worker = {
            shard_id: worker
            for worker, hosted in enumerate(assignments)
            for shard_id in hosted
        }

        processes: list[Any] = []
        conns: list[Any] = []
        try:
            if jobs == 1:
                conns = [_LocalConn(specs[0])]
            else:
                ctx = multiprocessing.get_context("spawn")
                for spec in specs:
                    parent_conn, child_conn = ctx.Pipe()
                    process = ctx.Process(
                        target=_worker_main, args=(child_conn, spec), daemon=True
                    )
                    process.start()
                    child_conn.close()
                    processes.append(process)
                    conns.append(parent_conn)
            self._drive(conns, shard_to_worker, sim_time)
        finally:
            for conn in conns:
                try:
                    conn.send(("exit",))
                except (BrokenPipeError, OSError):
                    pass
                conn.close()
            for process in processes:
                process.join(timeout=60)
                if process.is_alive():  # pragma: no cover - hung worker
                    process.terminate()
                    process.join()

    def _drive(
        self,
        conns: list[Any],
        shard_to_worker: dict[int, int],
        sim_time: float,
    ) -> None:
        """The barrier loop: advance all workers window by window."""
        lookahead = self.lookahead
        inboxes: list[list[tuple[float, int, int, int, Any]]] = [
            [] for _ in conns
        ]
        # Bus seeds are injected in the first window; they carry
        # synthetic source shard -1 and their list position as the seq.
        for index, (when, src_shard, dst_shard, payload) in enumerate(self.bus_seed):
            inboxes[shard_to_worker[dst_shard]].append(
                (when, src_shard, index, dst_shard, payload)
            )
        for inbox in inboxes:
            inbox.sort(key=lambda item: (item[0], item[1], item[2]))
        now = 0.0
        while True:
            until = sim_time if lookahead is None else min(sim_time, now + lookahead)
            for worker, conn in enumerate(conns):
                conn.send(("advance", until, inboxes[worker]))
            outbox: list[tuple[float, int, int, int, Any]] = []
            for conn in conns:
                kind, data = conn.recv()
                if kind == "error":
                    raise ParallelSimulationError(f"worker failed:\n{data}")
                outbox.extend(data)
            self.windows_run += 1
            inboxes = [[] for _ in conns]
            # Canonical (time, shard, seq) merge: every worker sees its
            # next-window inbox in one globally agreed order, so the
            # injection sequence — and therefore each group's event
            # numbering — is independent of worker packing.
            outbox.sort(key=lambda item: (item[0], item[1], item[2]))
            for event in outbox:
                if event[0] >= sim_time:
                    continue  # beyond the horizon; the serial engine
                    # would schedule it and never run it
                inboxes[shard_to_worker[event[3]]].append(event)
            now = until
            if now >= sim_time:
                break
        results: list[dict[str, Any]] = []
        for conn in conns:
            conn.send(("finish",))
            kind, data = conn.recv()
            if kind == "error":
                raise ParallelSimulationError(f"worker failed:\n{data}")
            results.append(data)
        self._ingest(results)

    def _ingest(self, results: list[dict[str, Any]]) -> None:
        by_shard: dict[int, GroupResult] = {}
        for payload in results:
            for raw in payload["groups"]:
                by_shard[raw["shard"]] = GroupResult(
                    shard_id=raw["shard"],
                    events_processed=raw["events"],
                    commit_trace=raw["commit_trace"],
                    blocks_committed=raw["blocks"],
                    ops_committed=raw["ops"],
                    misrouted_ops=raw["misrouted_ops"],
                    misrouted_messages=raw["misrouted_messages"],
                    num_clients=raw["num_clients"],
                    pool_ops=raw["pool_ops"],
                    latency_samples=raw["latency_samples"],
                    audit_report=raw["audit_report"],
                    registry=raw["registry"],
                )
            if self.journey is not None:
                self.journey._events.update(payload["journey_events"])
        self.group_results = [by_shard[gid] for gid in sorted(by_shard)]
        self._finished = True

    # ------------------------------------------------------------ readouts

    def _require_finished(self) -> None:
        if not self._finished:
            raise ConfigError("run_workload() has not completed yet")

    @property
    def shards(self) -> int:
        return self.shard.shards

    def assert_safety(self) -> None:
        """Safety was asserted worker-side before results shipped."""
        self._require_finished()

    def commit_trace(self) -> list[list[Any]]:
        """Flattened commit history, identical to the serial engine's."""
        self._require_finished()
        trace: list[list[Any]] = []
        for result in self.group_results:
            for row in result.commit_trace:
                trace.append([result.shard_id, *row])
        return trace

    def per_group_events(self) -> dict[int, int]:
        """Events processed by each group's simulator."""
        self._require_finished()
        return {
            result.shard_id: result.events_processed
            for result in self.group_results
        }

    def total_ops_committed(self) -> int:
        self._require_finished()
        return sum(result.ops_committed for result in self.group_results)

    @property
    def misrouted_rejected(self) -> int:
        self._require_finished()
        return sum(result.misrouted_ops for result in self.group_results)

    @property
    def blocks_committed(self) -> int:
        self._require_finished()
        return sum(result.blocks_committed for result in self.group_results)

    def per_shard_tps(self, duration: float) -> list[float]:
        self._require_finished()
        if duration <= 0:
            return [0.0 for _ in self.group_results]
        return [result.pool_ops / duration for result in self.group_results]

    def merged_latency(self, window_start: float = 0.0) -> Any:
        """All groups' weighted samples in one recorder, shard order."""
        from repro.harness.metrics import LatencyRecorder

        self._require_finished()
        merged = LatencyRecorder(window_start=window_start)
        for result in self.group_results:
            merged.samples.extend(
                tuple(sample) for sample in result.latency_samples
            )
        return merged

    def metrics_snapshot(self) -> dict[str, Any]:
        """Same shape as :meth:`ShardedCluster.metrics_snapshot`."""
        from repro.obs.metrics import MetricsRegistry

        self._require_finished()
        shards: dict[str, Any] = {}
        combined = MetricsRegistry()
        for result in self.group_results:
            registry = result.registry
            if registry is None:
                continue
            shards[str(result.shard_id)] = registry.snapshot()
            combined.merge_from(registry, shard=result.shard_id)
        return {
            "shards": shards,
            "cluster": combined.aggregate(drop_labels=("shard", "replica")).snapshot(),
        }

    def audit_reports(self) -> list[dict[str, Any]]:
        self._require_finished()
        return [
            result.audit_report
            for result in self.group_results
            if result.audit_report is not None
        ]

    def audit_violations(self) -> int:
        return sum(
            len(report.get("violations", [])) for report in self.audit_reports()
        )


def parallel_sharded_load_point(
    experiment: ExperimentConfig,
    shard: ShardConfig,
    protocol: str,
    clients: int,
    sim_time: float,
    warmup: float,
    request_size: int,
    reply_size: int,
    observability: Any,
    pipeline: Any,
    crypto: str,
    client: Any,
    des_jobs: int,
    lookahead: float | None = None,
):
    """The process-parallel twin of ``scenarios._sharded_load_point``.

    Returns the same ``(RunResult, cluster)`` pair with byte-identical
    numbers: throughput and percentiles are computed from the same
    per-group samples merged in the same order.
    """
    from repro.harness.metrics import RunResult
    from repro.harness.scenarios import _token_weight

    if observability is not None and not observability.journey_only():
        raise ConfigError(
            "observability collectors are per-group on a sharded run; "
            "drop observability (journey-only layers are allowed) or set "
            "shard.shards == 1"
        )
    journey = observability.journey if observability is not None else None
    engine = ParallelShardedCluster(
        experiment,
        shard=shard,
        protocol=protocol,
        crypto_mode=crypto,
        pipeline=pipeline,
        jobs=des_jobs,
        lookahead=lookahead,
        journey=journey,
    )
    engine.run_workload(
        num_clients=clients,
        sim_time=sim_time,
        request_size=request_size,
        reply_size=reply_size,
        token_weight=_token_weight(clients),
        target="leader",
        warmup=warmup,
        mode=client.mode if client is not None else "hub",
        client_config=client,
    )
    duration = sim_time - warmup
    per_shard_tps = engine.per_shard_tps(duration)
    latency = engine.merged_latency(window_start=warmup)
    result = RunResult(
        clients=clients,
        throughput_tps=sum(per_shard_tps),
        mean_latency=latency.mean(),
        p50_latency=latency.p50(),
        p99_latency=latency.p99(),
        blocks_committed=engine.blocks_committed,
        sim_time=sim_time,
        shards=shard.shards,
        per_shard_tps=per_shard_tps,
        p90_latency=latency.p90(),
        p999_latency=latency.p999(),
    )
    if journey is not None:
        from repro.obs.journey import build_waterfall

        result.waterfall = build_waterfall(
            journey, end_to_end=latency, window_start=warmup
        )
    return result, engine
